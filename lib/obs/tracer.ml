(** Span tracer over the *simulated* clock.

    Spans nest (strictly, per thread of control — the engine is
    single-threaded); each completed span lands in a bounded ring buffer
    for trace export, while exact aggregates (per-name count / total /
    self time, top-level coverage, top-level I/O argument totals) are
    folded in at completion so they survive ring wraparound.

    The disabled tracer reduces [with_span] to a single branch around the
    thunk — the engine instruments its hot paths unconditionally and pays
    ~nothing when observability is off (asserted by a bechamel
    microbench). *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;  (** 0 = top-level *)
  ev_args : (string * int) list;  (** e.g. I/O counter deltas *)
}

type frame = {
  f_name : string;
  f_cat : string;
  f_start : float;
  f_depth : int;
  mutable f_child_us : float;  (** time inside completed direct children *)
}

type agg = {
  mutable a_count : int;
  mutable a_total_us : float;
  mutable a_self_us : float;  (** total minus time in direct children *)
  mutable a_max_us : float;
}

type t = {
  enabled : bool;
  clock : unit -> float;
  ring : event option array;
  capacity : int;
  mutable recorded : int;  (** completed spans ever; ring holds the last [capacity] *)
  mutable stack : frame list;
  aggs : (string, agg) Hashtbl.t;
  top_args : (string, int ref) Hashtbl.t;
  mutable top_level_us : float;  (** sum of top-level span durations *)
}

let create ?(capacity = 65_536) ~clock () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be positive";
  {
    enabled = true;
    clock;
    ring = Array.make capacity None;
    capacity;
    recorded = 0;
    stack = [];
    aggs = Hashtbl.create 64;
    top_args = Hashtbl.create 16;
    top_level_us = 0.0;
  }

let disabled =
  {
    enabled = false;
    clock = (fun () -> 0.0);
    ring = [||];
    capacity = 0;
    recorded = 0;
    stack = [];
    aggs = Hashtbl.create 1;
    top_args = Hashtbl.create 1;
    top_level_us = 0.0;
  }

let enabled t = t.enabled

let agg_of t name =
  match Hashtbl.find_opt t.aggs name with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_total_us = 0.0; a_self_us = 0.0; a_max_us = 0.0 } in
      Hashtbl.replace t.aggs name a;
      a

let finish t fr args =
  let now = t.clock () in
  let dur = now -. fr.f_start in
  (* Pop this frame; tolerate (but do not require) a desynchronized stack
     so a buggy caller degrades the profile instead of crashing the run. *)
  (match t.stack with
  | top :: rest when top == fr -> t.stack <- rest
  | _ -> t.stack <- List.filter (fun f -> not (f == fr)) t.stack);
  (match t.stack with
  | parent :: _ -> parent.f_child_us <- parent.f_child_us +. dur
  | [] ->
      t.top_level_us <- t.top_level_us +. dur;
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt t.top_args k with
          | Some r -> r := !r + v
          | None -> Hashtbl.replace t.top_args k (ref v))
        args);
  let a = agg_of t fr.f_name in
  a.a_count <- a.a_count + 1;
  a.a_total_us <- a.a_total_us +. dur;
  a.a_self_us <- a.a_self_us +. (dur -. fr.f_child_us);
  if dur > a.a_max_us then a.a_max_us <- dur;
  t.ring.(t.recorded mod t.capacity) <-
    Some
      {
        ev_name = fr.f_name;
        ev_cat = fr.f_cat;
        ev_start_us = fr.f_start;
        ev_dur_us = dur;
        ev_depth = fr.f_depth;
        ev_args = args;
      };
  t.recorded <- t.recorded + 1

(** [with_span t ?cat ?args_of name f] runs [f] inside a span.  [args_of]
    is evaluated at completion (even if [f] raises) — the hook the
    environment uses to attach I/O counter deltas. *)
let with_span t ?(cat = "") ?args_of name f =
  if not t.enabled then f ()
  else begin
    let fr =
      {
        f_name = name;
        f_cat = cat;
        f_start = t.clock ();
        f_depth = List.length t.stack;
        f_child_us = 0.0;
      }
    in
    t.stack <- fr :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        let args = match args_of with Some g -> g () | None -> [] in
        finish t fr args)
      f
  end

let recorded t = t.recorded
let dropped t = if t.recorded > t.capacity then t.recorded - t.capacity else 0

(** [events t] is the ring's contents, oldest first — the last
    [capacity] completed spans. *)
let events t =
  let n = min t.recorded t.capacity in
  Array.init n (fun i ->
      let idx =
        if t.recorded <= t.capacity then i
        else (t.recorded + i) mod t.capacity
      in
      Option.get t.ring.(idx))

let top_level_us t = t.top_level_us

let top_level_args t =
  List.sort compare
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.top_args [])

let aggregates t =
  List.sort
    (fun (_, a) (_, b) -> compare b.a_total_us a.a_total_us)
    (Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.aggs [])

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(** [add_chrome_events b ?pid ~first t] appends one Chrome [trace_event]
    object per ring event to [b] (comma-separated; [first] says whether
    the first event emitted should omit its leading comma).  Returns
    whether anything was emitted.  Timestamps are simulated microseconds,
    which is exactly Chrome's unit. *)
let add_chrome_events b ?(pid = 0) ~first t =
  let evs = events t in
  Array.iteri
    (fun i ev ->
      if not (first && i = 0) then Buffer.add_string b ",\n";
      Buffer.add_string b "{\"name\":\"";
      json_escape b ev.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      json_escape b (if ev.ev_cat = "" then "engine" else ev.ev_cat);
      Buffer.add_string b
        (Printf.sprintf "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":0"
           ev.ev_start_us ev.ev_dur_us pid);
      (match ev.ev_args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_char b '"';
              json_escape b k;
              Buffer.add_string b (Printf.sprintf "\":%d" v))
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    evs;
  Array.length evs > 0

(** [to_chrome_json t] is a standalone loadable trace (one process). *)
let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  ignore (add_chrome_events b ~pid:0 ~first:true t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Text profile *)

(** [profile ?total_us t] renders the aggregate table, sorted by total
    time.  [total_us] (the run's elapsed simulated time) scales the
    percentage column and the coverage line; when omitted, the top-level
    span total is used (coverage then reads 100%). *)
let profile ?total_us t =
  let total = match total_us with Some x -> x | None -> t.top_level_us in
  let total = if total <= 0.0 then 1.0 else total in
  let rows =
    List.map
      (fun (name, a) ->
        [
          name;
          string_of_int a.a_count;
          Printf.sprintf "%.3f" (a.a_total_us /. 1e3);
          Printf.sprintf "%.3f" (a.a_self_us /. 1e3);
          Printf.sprintf "%.3f" (a.a_max_us /. 1e3);
          Printf.sprintf "%.1f%%" (a.a_total_us /. total *. 100.0);
        ])
      (aggregates t)
  in
  let header = [ "span"; "count"; "total(ms)"; "self(ms)"; "max(ms)"; "%run" ] in
  let all = header :: rows in
  let widths =
    List.init (List.length header) (fun c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          0 all)
  in
  let line row =
    String.concat "  "
      (List.map2
         (fun w s -> s ^ String.make (max 0 (w - String.length s)) ' ')
         widths row)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let coverage =
    Printf.sprintf
      "top-level spans cover %.3fms of %.3fms simulated time (%.1f%%); %d \
       spans recorded, %d dropped from the ring"
      (t.top_level_us /. 1e3) (total /. 1e3)
      (t.top_level_us /. total *. 100.0)
      t.recorded (dropped t)
  in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ coverage ])
