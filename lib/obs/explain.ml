(** EXPLAIN ANALYZE-style plan recording.

    A recorder is threaded through the engine's instrumented sections
    (the same sites as tracer spans — see [Lsm_sim.Env.span]): each
    section becomes a plan-tree node carrying its simulated duration,
    the I/O counter delta it caused (inclusive and self), plus free-form
    properties ([annotate]) and named operation counters ([count] —
    component probes, Bloom hits/negatives/false-positives, cursor
    restarts, entries validated vs. discarded...).

    Per distinct root operation (e.g. [query.point]) the recorder keeps
    the {e first} completed tree and the execution count, so explaining
    a 10K-query experiment costs one retained tree per operation shape,
    not 10K.

    Invariant the test suite leans on: a node's inclusive I/O delta
    equals its self delta plus the sum of its children's inclusive
    deltas — so summing [self_io] over a tree reproduces the root's
    (top-level) delta exactly. *)

type node = {
  name : string;
  mutable props : (string * string) list;  (** insertion order *)
  mutable counts : (string * int) list;  (** named op counters *)
  mutable dur_us : float;  (** inclusive simulated time *)
  mutable self_us : float;
  mutable io : (string * int) list;  (** inclusive I/O delta *)
  mutable self_io : (string * int) list;
  mutable children : node list;
}

type frame = { n : node; t0 : float; io0 : (string * int) list }

type plan = { root : node; executions : int }

type t = {
  mutable active : bool;
  clock : unit -> float;
  counters : unit -> (string * int) list;
      (** the live I/O counter snapshot (e.g. [Io_stats.fields]) *)
  mutable stack : frame list;
  plans : (string, node * int ref) Hashtbl.t;  (** first tree per root name *)
  mutable order : string list;  (** root names, reverse arrival order *)
}

let create ~clock ~counters () =
  {
    active = true;
    clock;
    counters;
    stack = [];
    plans = Hashtbl.create 16;
    order = [];
  }

let disabled =
  {
    active = false;
    clock = (fun () -> 0.0);
    counters = (fun () -> []);
    stack = [];
    plans = Hashtbl.create 1;
    order = [];
  }

let active t = t.active

let reset t =
  t.stack <- [];
  Hashtbl.reset t.plans;
  t.order <- []

(* Counter lists always come from the same [counters] closure, so they
   share key order; still resolve by key to stay robust. *)
let sub_counters now before =
  List.map
    (fun (k, v) ->
      let v0 = match List.assoc_opt k before with Some x -> x | None -> 0 in
      (k, v - v0))
    now

let add_counters a b =
  let merged =
    List.map
      (fun (k, v) ->
        let w = match List.assoc_opt k b with Some x -> x | None -> 0 in
        (k, v + w))
      a
  in
  let extra = List.filter (fun (k, _) -> not (List.mem_assoc k a)) b in
  merged @ extra

let nonzero = List.filter (fun (_, v) -> v <> 0)

let bump_count n key by =
  let rec go = function
    | [] -> [ (key, by) ]
    | (k, v) :: rest when k = key -> (k, v + by) :: rest
    | kv :: rest -> kv :: go rest
  in
  n.counts <- go n.counts

let annotate t props =
  match t.stack with
  | { n; _ } :: _ when t.active -> n.props <- n.props @ props
  | _ -> ()

let count t key by =
  match t.stack with
  | { n; _ } :: _ when t.active -> bump_count n key by
  | _ -> ()

let record_root t root =
  match Hashtbl.find_opt t.plans root.name with
  | Some (_, execs) -> incr execs
  | None ->
      Hashtbl.add t.plans root.name (root, ref 1);
      t.order <- root.name :: t.order

let finish t frame =
  let n = frame.n in
  (* Children were consed on; restore execution order. *)
  n.children <- List.rev n.children;
  n.dur_us <- t.clock () -. frame.t0;
  n.io <- sub_counters (t.counters ()) frame.io0;
  let child_io =
    List.fold_left (fun acc c -> add_counters acc c.io) [] n.children
  in
  n.self_io <- sub_counters n.io child_io;
  n.self_us <-
    n.dur_us -. List.fold_left (fun acc c -> acc +. c.dur_us) 0.0 n.children;
  match t.stack with
  | parent :: _ -> parent.n.children <- n :: parent.n.children
  | [] -> record_root t n

let node t ?(props = []) name f =
  if not t.active then f ()
  else begin
    let n =
      {
        name;
        props;
        counts = [];
        dur_us = 0.0;
        self_us = 0.0;
        io = [];
        self_io = [];
        children = [];
      }
    in
    let frame = { n; t0 = t.clock (); io0 = t.counters () } in
    t.stack <- frame :: t.stack;
    match f () with
    | r ->
        t.stack <- List.tl t.stack;
        finish t frame;
        r
    | exception e ->
        t.stack <- List.tl t.stack;
        finish t frame;
        raise e
  end

let plans t =
  List.rev_map
    (fun name ->
      let root, execs = Hashtbl.find t.plans name in
      { root; executions = !execs })
    t.order

(* ------------------------------------------------------------------ *)
(* Text rendering *)

let fmt_kvs fmt kvs =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf fmt k v) kvs)

let render_node buf root =
  let rec go ~root prefix is_last n =
    let branch, child_pad =
      if root then ("", "")
      else if is_last then (prefix ^ "└─ ", prefix ^ "   ")
      else (prefix ^ "├─ ", prefix ^ "│  ")
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (dur %.3fus, self %.3fus)" branch n.name n.dur_us
         n.self_us);
    if n.props <> [] then
      Buffer.add_string buf ("  {" ^ fmt_kvs "%s=%s" n.props ^ "}");
    Buffer.add_char buf '\n';
    let detail line =
      Buffer.add_string buf
        (child_pad ^ (if n.children = [] then "     " else "│    ") ^ line ^ "\n")
    in
    (match nonzero n.counts with
    | [] -> ()
    | cs -> detail ("counters: " ^ fmt_kvs "%s=%d" cs));
    (match nonzero n.self_io with
    | [] -> ()
    | io -> detail ("io(self): " ^ fmt_kvs "%s=%d" io));
    let rec children = function
      | [] -> ()
      | [ c ] -> go ~root:false child_pad true c
      | c :: rest ->
          go ~root:false child_pad false c;
          children rest
    in
    children n.children
  in
  go ~root:true "" true root

let to_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "plan: %s  (executions: %d, first shown)\n" p.root.name
           p.executions);
      (match nonzero p.root.io with
      | [] -> ()
      | io ->
          Buffer.add_string buf ("io(total): " ^ fmt_kvs "%s=%d" io ^ "\n"));
      render_node buf p.root;
      Buffer.add_char buf '\n')
    (plans t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let schema = "lsm-repro-explain/1"

let rec node_to_json n =
  let obj_of conv kvs = Json.Obj (List.map (fun (k, v) -> (k, conv v)) kvs) in
  Json.Obj
    [
      ("name", Json.Str n.name);
      ("dur_us", Json.Float n.dur_us);
      ("self_us", Json.Float n.self_us);
      ("props", obj_of (fun v -> Json.Str v) n.props);
      ("counters", obj_of (fun v -> Json.Int v) (nonzero n.counts));
      ("io", obj_of (fun v -> Json.Int v) (nonzero n.io));
      ("io_self", obj_of (fun v -> Json.Int v) (nonzero n.self_io));
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "plans",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str p.root.name);
                   ("executions", Json.Int p.executions);
                   ("root", node_to_json p.root);
                 ])
             (plans t)) );
    ]
