(** Windowed time-series telemetry on the simulated clock.

    Every end-of-run report in this repo answers "what happened on
    average"; this module answers "what happened *when*".  Observations
    land in fixed-width windows (index = ⌊t / window⌋), each window
    holding named latency histograms (the log-scale {!Histogram}, so a
    window costs a flat int array per series), integer counters, float
    accumulators, running maxima, and last-value gauges.  Alongside the
    windows, a bounded flight-recorder ring keeps discrete *events* —
    maintenance spans such as budget evictions, flushes, and merges —
    with their full timestamps, so an SLO alert in window W can be
    joined back against the exact maintenance activity that overlapped
    it ({!Slo.attribute}).

    Everything here is driven by simulated time supplied by the caller;
    a run that is deterministic for a seed therefore produces a
    byte-identical JSON/CSV export, which CI relies on. *)

type window = {
  hists : (string, Histogram.t) Hashtbl.t;
  counts : (string, int ref) Hashtbl.t;
  sums : (string, float ref) Hashtbl.t;
  maxes : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;  (** last value wins *)
}

type event = {
  e_start_us : float;
  e_dur_us : float;
  e_kind : string;  (** e.g. ["eviction"], ["dataset.flush"], ["lsm.merge"] *)
  e_part : int;  (** partition the event ran on; [-1] = global *)
  e_detail : (string * int) list;  (** e.g. bytes evicted, amp deltas *)
}

type t = {
  window_us : float;
  windows : (int, window) Hashtbl.t;
  mutable max_index : int;  (** highest window index touched; -1 = none *)
  ring : event option array;
  capacity : int;
  mutable ev_recorded : int;  (** events ever; ring holds the last [capacity] *)
}

let create ?(events_capacity = 4096) ~window_us () =
  if window_us <= 0.0 then invalid_arg "Timeseries.create: window_us > 0";
  if events_capacity < 1 then
    invalid_arg "Timeseries.create: events_capacity >= 1";
  {
    window_us;
    windows = Hashtbl.create 64;
    max_index = -1;
    ring = Array.make events_capacity None;
    capacity = events_capacity;
    ev_recorded = 0;
  }

let window_us t = t.window_us

(** [index t ~at_us] is the window holding instant [at_us] (clamped at
    0 — the run timeline starts at the epoch). *)
let index t ~at_us =
  if at_us <= 0.0 then 0 else int_of_float (Float.floor (at_us /. t.window_us))

let n_windows t = t.max_index + 1
let window_start t i = Float.of_int i *. t.window_us

let window_of t i =
  match Hashtbl.find_opt t.windows i with
  | Some w -> w
  | None ->
      let w =
        {
          hists = Hashtbl.create 8;
          counts = Hashtbl.create 8;
          sums = Hashtbl.create 8;
          maxes = Hashtbl.create 8;
          gauges = Hashtbl.create 8;
        }
      in
      Hashtbl.replace t.windows i w;
      if i > t.max_index then t.max_index <- i;
      w

let cell tbl mk series =
  match Hashtbl.find_opt tbl series with
  | Some c -> c
  | None ->
      let c = mk () in
      Hashtbl.replace tbl series c;
      c

(** [observe t ~at_us series v] feeds [v] into [series]'s latency
    histogram in the window of [at_us]. *)
let observe t ~at_us series v =
  Histogram.observe (cell (window_of t (index t ~at_us)).hists Histogram.create series) v

(** [count t ~at_us series n] bumps an integer counter. *)
let count t ~at_us series n =
  let c = cell (window_of t (index t ~at_us)).counts (fun () -> ref 0) series in
  c := !c + n

(** [add t ~at_us series v] accumulates a float (e.g. busy microseconds). *)
let add t ~at_us series v =
  let c = cell (window_of t (index t ~at_us)).sums (fun () -> ref 0.0) series in
  c := !c +. v

(** [set_max t ~at_us series v] keeps the window's running maximum. *)
let set_max t ~at_us series v =
  let c =
    cell (window_of t (index t ~at_us)).maxes (fun () -> ref neg_infinity) series
  in
  if v > !c then c := v

(** [set_last t ~at_us series v] records a sampled gauge; the last
    sample in the window wins. *)
let set_last t ~at_us series v =
  let c = cell (window_of t (index t ~at_us)).gauges (fun () -> ref 0.0) series in
  c := v

(* ------------------------------------------------------------------ *)
(* Per-window readers (used by Slo and the exports) *)

let hist t ~i series =
  Option.bind (Hashtbl.find_opt t.windows i) (fun w ->
      Hashtbl.find_opt w.hists series)

let count_of t ~i series =
  match
    Option.bind (Hashtbl.find_opt t.windows i) (fun w ->
        Hashtbl.find_opt w.counts series)
  with
  | Some c -> !c
  | None -> 0

let sum_of t ~i series =
  match
    Option.bind (Hashtbl.find_opt t.windows i) (fun w ->
        Hashtbl.find_opt w.sums series)
  with
  | Some c -> !c
  | None -> 0.0

let max_of t ~i series =
  Option.map ( ! )
    (Option.bind (Hashtbl.find_opt t.windows i) (fun w ->
         Hashtbl.find_opt w.maxes series))

let last_of t ~i series =
  Option.map ( ! )
    (Option.bind (Hashtbl.find_opt t.windows i) (fun w ->
         Hashtbl.find_opt w.gauges series))

let names_of proj t =
  let s = ref [] in
  Hashtbl.iter
    (fun _ w -> Hashtbl.iter (fun k _ -> if not (List.mem k !s) then s := k :: !s) (proj w))
    t.windows;
  List.sort compare !s

(** Sorted unions of series names over all windows, per family. *)
let hist_names t = names_of (fun w -> w.hists) t
let count_names t = names_of (fun w -> w.counts) t
let sum_names t = names_of (fun w -> w.sums) t
let max_names t = names_of (fun w -> w.maxes) t
let gauge_names t = names_of (fun w -> w.gauges) t

(* ------------------------------------------------------------------ *)
(* Events (flight recorder) *)

(** [event t ~start_us ~dur_us ~kind ~part detail] records one discrete
    maintenance event into the bounded ring. *)
let event t ~start_us ~dur_us ~kind ~part detail =
  t.ring.(t.ev_recorded mod t.capacity) <-
    Some
      {
        e_start_us = start_us;
        e_dur_us = dur_us;
        e_kind = kind;
        e_part = part;
        e_detail = detail;
      };
  t.ev_recorded <- t.ev_recorded + 1

let events_recorded t = t.ev_recorded

let events_dropped t =
  if t.ev_recorded > t.capacity then t.ev_recorded - t.capacity else 0

(** [events t] is the ring's contents, oldest first. *)
let events t =
  let n = min t.ev_recorded t.capacity in
  Array.init n (fun i ->
      let idx =
        if t.ev_recorded <= t.capacity then i
        else (t.ev_recorded + i) mod t.capacity
      in
      Option.get t.ring.(idx))

(** [events_between t ~from_us ~until_us] is every ring event whose span
    [start, start+dur] intersects [[from_us, until_us)], oldest first. *)
let events_between t ~from_us ~until_us =
  List.filter
    (fun e -> e.e_start_us +. e.e_dur_us >= from_us && e.e_start_us < until_us)
    (Array.to_list (events t))

(** [events_of_kind t kind] is every ring event of one kind, oldest
    first — e.g. a chaos report pulling its ["breaker.open"] or
    ["chaos.crash"] markers back out of the flight recorder. *)
let events_of_kind t kind =
  List.filter (fun e -> e.e_kind = kind) (Array.to_list (events t))

(* ------------------------------------------------------------------ *)
(* Exports *)

let hist_summary_json h =
  Json.Obj
    [
      ("count", Json.Int (Histogram.count h));
      ("mean_us", Json.Float (Histogram.mean h));
      ("p50_us", Json.Float (Histogram.quantile h 0.5));
      ("p95_us", Json.Float (Histogram.quantile h 0.95));
      ("p99_us", Json.Float (Histogram.quantile h 0.99));
      ("max_us", Json.Float (Histogram.max_value h));
    ]

let event_json e =
  Json.Obj
    [
      ("start_us", Json.Float e.e_start_us);
      ("dur_us", Json.Float e.e_dur_us);
      ("kind", Json.Str e.e_kind);
      ("part", Json.Int e.e_part);
      ("detail", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.e_detail));
    ]

let window_json t i =
  let pick tbl = Option.bind (Hashtbl.find_opt t.windows i) tbl in
  let assoc names get = List.filter_map (fun n -> get n) names in
  Json.Obj
    [
      ("i", Json.Int i);
      ("start_us", Json.Float (window_start t i));
      ( "series",
        Json.Obj
          (assoc (hist_names t) (fun n ->
               Option.map
                 (fun h -> (n, hist_summary_json h))
                 (pick (fun w -> Hashtbl.find_opt w.hists n)))) );
      ( "counters",
        Json.Obj
          (assoc (count_names t) (fun n ->
               Option.map
                 (fun c -> (n, Json.Int !c))
                 (pick (fun w -> Hashtbl.find_opt w.counts n)))) );
      ( "sums",
        Json.Obj
          (assoc (sum_names t) (fun n ->
               Option.map
                 (fun c -> (n, Json.Float !c))
                 (pick (fun w -> Hashtbl.find_opt w.sums n)))) );
      ( "maxes",
        Json.Obj
          (assoc (max_names t) (fun n ->
               Option.map
                 (fun c -> (n, Json.Float !c))
                 (pick (fun w -> Hashtbl.find_opt w.maxes n)))) );
      ( "gauges",
        Json.Obj
          (assoc (gauge_names t) (fun n ->
               Option.map
                 (fun c -> (n, Json.Float !c))
                 (pick (fun w -> Hashtbl.find_opt w.gauges n)))) );
    ]

(** [to_json t]: the windows (dense, 0 .. max index — empty windows emit
    empty objects so consumers can difference neighbours) and the event
    ring.  Deterministic: series names are sorted, windows are in index
    order. *)
let to_json t =
  Json.Obj
    [
      ("window_us", Json.Float t.window_us);
      ("n_windows", Json.Int (n_windows t));
      ("windows", Json.List (List.init (n_windows t) (window_json t)));
      ( "events",
        Json.Obj
          [
            ("recorded", Json.Int t.ev_recorded);
            ("dropped", Json.Int (events_dropped t));
            ( "ring",
              Json.List (Array.to_list (Array.map event_json (events t))) );
          ] );
    ]

(** [to_csv t] is a plot-ready table: one row per window, one column
    group per series (count/p50/p95/p99 for histograms; a single column
    for counters, sums, maxes, gauges).  Missing cells are 0. *)
let to_csv t =
  let b = Buffer.create 1024 in
  let hists = hist_names t
  and counts = count_names t
  and sums = sum_names t
  and maxes = max_names t
  and gauges = gauge_names t in
  Buffer.add_string b "window,start_us";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf ",%s.count,%s.p50_us,%s.p95_us,%s.p99_us" n n n n))
    hists;
  List.iter (fun n -> Buffer.add_string b ("," ^ n)) (counts @ sums @ maxes @ gauges);
  Buffer.add_char b '\n';
  for i = 0 to t.max_index do
    Buffer.add_string b (Printf.sprintf "%d,%.3f" i (window_start t i));
    List.iter
      (fun n ->
        match hist t ~i n with
        | Some h ->
            Buffer.add_string b
              (Printf.sprintf ",%d,%.3f,%.3f,%.3f" (Histogram.count h)
                 (Histogram.quantile h 0.5)
                 (Histogram.quantile h 0.95)
                 (Histogram.quantile h 0.99))
        | None -> Buffer.add_string b ",0,0,0,0")
      hists;
    List.iter
      (fun n -> Buffer.add_string b (Printf.sprintf ",%d" (count_of t ~i n)))
      counts;
    List.iter
      (fun n -> Buffer.add_string b (Printf.sprintf ",%.3f" (sum_of t ~i n)))
      sums;
    List.iter
      (fun n ->
        Buffer.add_string b
          (Printf.sprintf ",%.3f" (Option.value ~default:0.0 (max_of t ~i n))))
      maxes;
    List.iter
      (fun n ->
        Buffer.add_string b
          (Printf.sprintf ",%.3f" (Option.value ~default:0.0 (last_of t ~i n))))
      gauges;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b
