(** Write-amplification accounting.

    The LSM engine reports every flush and merge here; from those events
    this module derives the ingestion side of the amplification triangle
    (Luo & Carey's survey frames write/read/space amplification as the
    cost trade-off behind every LSM design decision).  Read and space
    amplification need a live tree to measure against, so they are
    computed by the harness ([Lsm_harness.Inspect]) from probe samples
    and component snapshots; this module only accumulates the event
    stream, which must stay cheap enough to run unconditionally —
    flushes and merges are rare next to lookups, so there is no
    enabled/disabled branch at all. *)

type t = {
  mutable flushes : int;
  mutable flush_bytes : int;  (** bytes written by flushes (first writes) *)
  mutable flush_rows : int;
  mutable merges : int;
  mutable merge_read_bytes : int;
  mutable merge_written_bytes : int;  (** bytes re-written by merges *)
  mutable merge_rows_in : int;
  mutable merge_rows_out : int;  (** < rows_in when merges reconcile/drop *)
}

let create () =
  {
    flushes = 0;
    flush_bytes = 0;
    flush_rows = 0;
    merges = 0;
    merge_read_bytes = 0;
    merge_written_bytes = 0;
    merge_rows_in = 0;
    merge_rows_out = 0;
  }

let reset t =
  t.flushes <- 0;
  t.flush_bytes <- 0;
  t.flush_rows <- 0;
  t.merges <- 0;
  t.merge_read_bytes <- 0;
  t.merge_written_bytes <- 0;
  t.merge_rows_in <- 0;
  t.merge_rows_out <- 0

let copy t = { t with flushes = t.flushes }

(** [diff ~since now] — per-field deltas, for windowed sampling: copy
    before a maintenance step, diff after, attribute the difference to
    the step. *)
let diff ~since now =
  {
    flushes = now.flushes - since.flushes;
    flush_bytes = now.flush_bytes - since.flush_bytes;
    flush_rows = now.flush_rows - since.flush_rows;
    merges = now.merges - since.merges;
    merge_read_bytes = now.merge_read_bytes - since.merge_read_bytes;
    merge_written_bytes = now.merge_written_bytes - since.merge_written_bytes;
    merge_rows_in = now.merge_rows_in - since.merge_rows_in;
    merge_rows_out = now.merge_rows_out - since.merge_rows_out;
  }

let on_flush t ~bytes ~rows =
  t.flushes <- t.flushes + 1;
  t.flush_bytes <- t.flush_bytes + bytes;
  t.flush_rows <- t.flush_rows + rows

let on_merge t ~bytes_read ~bytes_written ~rows_in ~rows_out =
  t.merges <- t.merges + 1;
  t.merge_read_bytes <- t.merge_read_bytes + bytes_read;
  t.merge_written_bytes <- t.merge_written_bytes + bytes_written;
  t.merge_rows_in <- t.merge_rows_in + rows_in;
  t.merge_rows_out <- t.merge_rows_out + rows_out

(** [write_amplification t] = total bytes written / bytes of first
    writes; 1.0 when nothing was merged, [nan] before the first flush. *)
let write_amplification t =
  if t.flush_bytes = 0 then Float.nan
  else
    Float.of_int (t.flush_bytes + t.merge_written_bytes)
    /. Float.of_int t.flush_bytes

let fields t =
  [
    ("flushes", t.flushes);
    ("flush_bytes", t.flush_bytes);
    ("flush_rows", t.flush_rows);
    ("merges", t.merges);
    ("merge_read_bytes", t.merge_read_bytes);
    ("merge_written_bytes", t.merge_written_bytes);
    ("merge_rows_in", t.merge_rows_in);
    ("merge_rows_out", t.merge_rows_out);
  ]

(** [publish t m] mirrors the accumulated totals (and the derived write
    amplification) into [amp.*] gauges of registry [m], so `--metrics`
    dumps carry them alongside the [io.*] counters. *)
let publish t m =
  List.iter
    (fun (k, v) -> Metrics.set (Metrics.gauge m ("amp." ^ k)) (Float.of_int v))
    (fields t);
  let wa = write_amplification t in
  if not (Float.is_nan wa) then
    Metrics.set (Metrics.gauge m "amp.write_amplification") wa

let to_lines t =
  List.map (fun (k, v) -> Printf.sprintf "amp.%s %d" k v) (fields t)
  @
  let wa = write_amplification t in
  if Float.is_nan wa then []
  else [ Printf.sprintf "amp.write_amplification %.3f" wa ]
