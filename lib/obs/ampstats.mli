(** Write-amplification accounting, fed by the LSM engine's flush and
    merge events.  Always on (flushes/merges are rare next to lookups,
    so there is no enabled branch); read and space amplification are
    derived by the harness from probe samples and component snapshots. *)

type t = {
  mutable flushes : int;
  mutable flush_bytes : int;
  mutable flush_rows : int;
  mutable merges : int;
  mutable merge_read_bytes : int;
  mutable merge_written_bytes : int;
  mutable merge_rows_in : int;
  mutable merge_rows_out : int;
}

val create : unit -> t
val reset : t -> unit

val copy : t -> t
(** Independent snapshot of the current totals. *)

val diff : since:t -> t -> t
(** [diff ~since now] is the per-field delta — snapshot with {!copy}
    before a maintenance step, diff after, attribute the difference. *)

val on_flush : t -> bytes:int -> rows:int -> unit

val on_merge :
  t -> bytes_read:int -> bytes_written:int -> rows_in:int -> rows_out:int -> unit

val write_amplification : t -> float
(** Total bytes written / bytes of first writes; [nan] before the first
    flush. *)

val fields : t -> (string * int) list

val publish : t -> Metrics.t -> unit
(** Mirror the totals into [amp.*] gauges of a metrics registry. *)

val to_lines : t -> string list
