(** EXPLAIN ANALYZE-style plan recording.

    A recorder turns the engine's instrumented sections into plan trees:
    one node per section, carrying simulated duration, the I/O counter
    delta it caused (inclusive and self), free-form properties, and
    named operation counters (component probes, Bloom outcomes, cursor
    restarts, validation results).  Per distinct root operation the
    first completed tree is retained together with an execution count.

    Invariant: a node's inclusive I/O delta equals its self delta plus
    the sum of its children's inclusive deltas, so [self_io] summed over
    a tree reproduces the root's top-level delta exactly. *)

type node = {
  name : string;
  mutable props : (string * string) list;
  mutable counts : (string * int) list;
  mutable dur_us : float;
  mutable self_us : float;
  mutable io : (string * int) list;
  mutable self_io : (string * int) list;
  mutable children : node list;
}

type plan = { root : node; executions : int }

type t

val create :
  clock:(unit -> float) -> counters:(unit -> (string * int) list) -> unit -> t
(** [create ~clock ~counters ()] — [counters] returns the live I/O
    counter snapshot (e.g. [Io_stats.fields] of the environment's
    stats); node deltas are differences of its values. *)

val disabled : t
(** Inert recorder: [node] reduces to running the thunk. *)

val active : t -> bool
val reset : t -> unit

val node : t -> ?props:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [node t name f] runs [f] as a plan node (child of the innermost
    in-flight node, or a new root).  Exception-safe. *)

val annotate : t -> (string * string) list -> unit
(** Attach properties to the innermost in-flight node; no-op outside
    any node or when inactive. *)

val count : t -> string -> int -> unit
(** [count t key by] bumps named counter [key] on the innermost
    in-flight node; no-op outside any node or when inactive. *)

val plans : t -> plan list
(** Retained plans in first-arrival order. *)

val schema : string
(** Schema tag carried by {!to_json} documents ("lsm-repro-explain/1"). *)

val to_text : t -> string
(** Aligned text tree, one block per retained plan. *)

val to_json : t -> Json.t
