(** Log-scale latency histogram: geometric buckets (8 per octave, ~9%
    relative resolution), constant-time observation, conservative
    quantiles.  Values are non-negative floats (simulated microseconds
    throughout this repo). *)

type t

val create : unit -> t
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the upper bound of the bucket
    holding the rank-[ceil (q*count)] observation, capped at the exact
    maximum; 0 when empty.  Never under-reports by more than the ~9%
    bucket resolution. *)

val count_above : t -> float -> int
(** [count_above t v] is the number of observations certainly above [v]:
    the population of all buckets strictly above [v]'s (plus the exact
    max when it alone exceeds [v]).  Conservative within the ~9% bucket
    resolution — observations sharing [v]'s bucket count as not-above. *)

val reset : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** [n=… mean=… p50=… p95=… p99=… max=…] *)
