(** Log-scale latency histogram: geometric buckets (8 per octave, ~9%
    relative resolution), constant-time observation, conservative
    quantiles.  Values are non-negative floats (simulated microseconds
    throughout this repo). *)

type t

val create : unit -> t
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the upper bound of the bucket
    holding the rank-[ceil (q*count)] observation, capped at the exact
    maximum; 0 when empty.  Never under-reports by more than the ~9%
    bucket resolution. *)

val reset : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** [n=… mean=… p50=… p95=… p99=… max=…] *)
