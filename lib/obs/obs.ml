(** The observability handle an engine component carries: one metrics
    registry plus one span tracer, with a single [enabled] flag the hot
    paths branch on.  {!disabled} is the default everywhere — engines are
    instrumented unconditionally and pay one branch per instrumentation
    point until someone calls {!create}. *)

type t = {
  enabled : bool;
  metrics : Metrics.t;
  tracer : Tracer.t;
}

let disabled =
  { enabled = false; metrics = Metrics.create (); tracer = Tracer.disabled }

(** [create ~clock ()] builds an enabled handle; [clock] supplies span
    timestamps (the simulated clock, in microseconds). *)
let create ?trace_capacity ~clock () =
  {
    enabled = true;
    metrics = Metrics.create ();
    tracer = Tracer.create ?capacity:trace_capacity ~clock ();
  }

let enabled t = t.enabled
let metrics t = t.metrics
let tracer t = t.tracer
