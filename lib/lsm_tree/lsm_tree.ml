(** A generic LSM-tree over the simulated storage substrate.

    One [Make (K) (V)] instance backs each index of a dataset: the primary
    index (key = primary key, value = record), the primary key index
    (key = primary key, value = unit), and secondary indexes (key =
    (secondary key, primary key), value = unit).  Entries are timestamped;
    component IDs are (minTS, maxTS) ranges over entry timestamps, as in
    Fig. 1 of the paper.

    The tree itself knows nothing about maintenance strategies: it offers
    writes into the memory component, flush, merge of a contiguous
    component range, reconciling and per-component scans, and the point
    lookup algorithms of Sec. 3.2.  Strategy logic lives in [Lsm_core]. *)

module Entry = Entry
module Config = Config
module Merge_policy = Merge_policy

(** Provenance of a disk component w.r.t. memory-shard flushes: which
    flush operation(s) produced its rows.  Lives outside the functor so
    the provenance of components from *different* [Make] instances (the
    primary / primary-key pair of a dataset, whose flush histories are
    identical by construction) can be compared, and so recovery can
    compute per-shard durable frontiers.  A merged component carries the
    concatenation of its inputs' origins, newest first. *)
type flush_origin = {
  fo_shards : int;  (** the tree's shard count when the flush ran *)
  fo_shard : int;  (** flushed shard index; [-1] = whole-memory flush *)
  fo_min_ts : int;  (** component ID bounds of the flushed component *)
  fo_max_ts : int;
}

let flush_origin_equal (a : flush_origin) (b : flush_origin) =
  a.fo_shards = b.fo_shards && a.fo_shard = b.fo_shard
  && a.fo_min_ts = b.fo_min_ts
  && a.fo_max_ts = b.fo_max_ts

module type KEY = Lsm_util.Intf.ORDERED

module type VALUE = Lsm_util.Intf.SIZED

module Make (K : KEY) (V : VALUE) = struct
  module Mbt = Lsm_btree.Mem_btree.Make (K)
  module Dbt = Lsm_btree.Disk_btree.Make (K)
  module View = Sorted_view.Make (K)

  type row = { key : K.t; ts : int; value : V.t Entry.t }

  let row_size r = K.byte_size r.key + 8 + Entry.byte_size V.byte_size r.value

  type mem_component = {
    table : (int * V.t Entry.t) Mbt.t;  (** key -> (ts, entry) *)
    mutable bytes : int;
    mutable min_ts : int;  (** max_int when empty *)
    mutable max_ts : int;  (** -1 when empty *)
    mutable fmin : int;  (** range filter bounds; max_int/min_int = empty *)
    mutable fmax : int;
  }

  type disk_component = {
    tree : row Dbt.t;
    bloom : Lsm_bloom.Filter.t option;
    cmin_ts : int;  (** component ID lower bound *)
    cmax_ts : int;  (** component ID upper bound *)
    range_filter : (int * int) option;
    mutable bitmap : Lsm_util.Bitset.t option;  (** 1 = entry invalid *)
    mutable repaired_ts : int;
        (** entries are valid w.r.t. primary-key-index entries with
            ts <= repaired_ts (Sec. 4.4); 0 = never repaired *)
    mutable quarantined : bool;
        (** a page or filter of this component failed its checksum;
            lookups stop trusting the Bloom filter (degraded reads) until
            the maintenance supervisor rebuilds or scrubs it *)
    seq : int;  (** unique id, for debugging and cache bookkeeping *)
    prov : flush_origin list;
        (** flush provenance, newest first; [[]] for components built by
            machinery that does not track it *)
  }

  type t = {
    env : Lsm_sim.Env.t;
    config : Config.t;
    filter_of : (V.t -> int) option;
        (** extracts the range-filter key from a value; [None] = no filter *)
    mems : mem_component array;
        (** memory shards; writes hash-route by key.  Length 1 behaves
            exactly like the classic single memory component. *)
    mutable disk : disk_component list;  (** newest first *)
    mutable view : (row View.t * disk_component array) option;
        (** REMIX-style sorted view over the *current* [disk] list (the
            array snapshot it was built from), built lazily by the first
            full reconciling scan and dropped — atomically, in the same
            step — whenever [disk] changes, so a view can never outlive
            the component set it orders *)
    mutable views_enabled : bool;
    mutable next_seq : int;
    mutable tombstone_drop_ts : int;
        (** bottom merges may physically drop an anti-matter entry only if
            its timestamp is <= this barrier.  Defaults to [max_int] (drop
            freely).  A dataset whose secondary indexes validate against
            this tree lowers it to the minimum secondary repairedTS, so
            that deletions stay observable until every obsolete secondary
            entry has been repaired. *)
  }

  let fresh_mem () =
    {
      table = Mbt.create ();
      bytes = 0;
      min_ts = max_int;
      max_ts = -1;
      fmin = max_int;
      fmax = min_int;
    }

  let create ?filter_of env config =
    {
      env;
      config;
      filter_of;
      mems = Array.init (max 1 config.Config.shards) (fun _ -> fresh_mem ());
      disk = [];
      view = None;
      views_enabled = true;
      next_seq = 0;
      tombstone_drop_ts = max_int;
    }

  let mem_shards t = Array.length t.mems

  (** [shard_of t key] is the memory shard [key] routes to.  The hash is
      re-mixed so shard routing stays independent of any outer
      partition-by-key routing that used [K.hash] directly. *)
  let shard_of t key =
    let n = Array.length t.mems in
    if n = 1 then 0 else Lsm_bloom.Hashing.mix64 (K.hash key) land max_int mod n

  (** [set_tombstone_drop_ts t ts]: see the field documentation. *)
  let set_tombstone_drop_ts t ts = t.tombstone_drop_ts <- ts

  let env t = t.env
  let config t = t.config
  let name t = t.config.Config.name

  (* ------------------------------------------------------------------ *)
  (* Accessors *)

  let mem_bytes t = Array.fold_left (fun acc m -> acc + m.bytes) 0 t.mems
  let mem_shard_bytes t s = t.mems.(s).bytes
  let mem_count t =
    Array.fold_left (fun acc m -> acc + Mbt.length m.table) 0 t.mems

  let mem_is_empty t = Array.for_all (fun m -> Mbt.is_empty m.table) t.mems

  let mem_id t =
    Array.fold_left
      (fun (lo, hi) m -> (min lo m.min_ts, max hi m.max_ts))
      (max_int, -1) t.mems

  (** [components t] is the disk components, newest first. *)
  let components t = Array.of_list t.disk

  let component_count t = List.length t.disk
  let component_id c = (c.cmin_ts, c.cmax_ts)
  let component_rows c = Dbt.nrows c.tree
  let component_size_bytes t c = Dbt.size_bytes t.env c.tree
  let component_file c = Lsm_sim.Sfile.id (Dbt.file c.tree)
  let quarantined c = c.quarantined

  (** [quarantine t c] marks [c] degraded (see {!disk_component}); counted
      once per component in the environment's resilience stats. *)
  let quarantine t c =
    if not c.quarantined then begin
      c.quarantined <- true;
      let r = Lsm_sim.Env.resil t.env in
      r.Lsm_sim.Env.quarantines <- r.Lsm_sim.Env.quarantines + 1
    end

  let disk_size_bytes t =
    List.fold_left (fun acc c -> acc + component_size_bytes t c) 0 t.disk

  let total_rows t =
    mem_count t + List.fold_left (fun acc c -> acc + component_rows c) 0 t.disk

  let charge_mem_cmps t =
    Lsm_sim.Env.charge_comparisons t.env
      (Array.fold_left
         (fun acc m -> acc + Mbt.take_comparisons m.table)
         0 t.mems)

  (* ------------------------------------------------------------------ *)
  (* Sorted views (REMIX): lifecycle *)

  (** Views only pay off when a scan would otherwise merge multiple
      streams. *)
  let view_min_components = 2

  (** [invalidate_view t] drops the sorted view, if any.  Called
      immediately before *every* assignment of [t.disk] (flush, merge,
      replace_range, remove_component): the drop and the list mutation
      are adjacent non-raising stores, so a crash — which in this
      simulator is an exception at a fault point — can never observe a
      view describing a component set that no longer exists.  Recovery
      needs no view repair: a rebuilt tree starts with [view = None] and
      the next reconciling scan rebuilds it from the surviving
      components. *)
  let invalidate_view t =
    match t.view with
    | None -> ()
    | Some (v, _) ->
        t.view <- None;
        View.release t.env v;
        let vs = Lsm_sim.Env.view_stats t.env in
        vs.Lsm_sim.Env.invalidations <- vs.Lsm_sim.Env.invalidations + 1

  (** [set_sorted_views t on] toggles the subsystem at runtime (the heap
      merge remains the fallback and the differential-test oracle). *)
  let set_sorted_views t on =
    if not on then invalidate_view t;
    t.views_enabled <- on

  let sorted_views_enabled t = t.views_enabled

  (** [view_info t] is [(positions, anchors, run count)] of the current
      view, if one is materialized. *)
  let view_info t =
    match t.view with
    | None -> None
    | Some (v, _) -> Some (View.positions v, View.anchor_count v, View.run_count v)

  let view_matches comps_a built =
    Array.length built = Array.length comps_a
    && begin
         let ok = ref true in
         Array.iteri (fun i c -> if built.(i) != c then ok := false) comps_a;
         !ok
       end

  (* Build (or reuse) the view covering exactly [comps_a] = the current
     disk list.  The build is charged through [Env] (merge comparisons +
     sequential view-page writes) inside its own span, so explain plans
     and traces show rebuild cost where it happens. *)
  let ensure_view t comps_a =
    match t.view with
    | Some (v, built) when view_matches comps_a built -> v
    | _ ->
        invalidate_view t;
        Lsm_sim.Env.span t.env ~cat:(name t) "lsm.view.build" @@ fun () ->
        let runs =
          Array.map
            (fun c ->
              {
                View.keys = Dbt.keys c.tree;
                rows = Dbt.rows c.tree;
                file = Dbt.file c.tree;
                leaf_of_row = (fun i -> Dbt.leaf_of_row c.tree i);
                leaf_pages = Dbt.leaf_pages c.tree;
              })
            comps_a
        in
        let v = View.build t.env runs in
        Lsm_sim.Env.explain_count t.env "view_build_rows" (View.positions v);
        t.view <- Some (v, comps_a);
        v

  (* ------------------------------------------------------------------ *)
  (* Writes *)

  (** [widen_filter t key fkey] widens the range filter of the memory
      shard owning [key] to cover [fkey].  The Eager strategy calls this
      with the *old* record's filter key on upserts and deletes so that
      queries do not erroneously prune the memory component (Sec. 3.1);
      Validation and Mutable-bitmap deliberately do not (Secs. 4.2,
      5.2).  [key] routes the widening to the shard that received the
      same-key write, so a per-shard flush carries its filter. *)
  let widen_filter t key fkey =
    if t.filter_of <> None then begin
      let m = t.mems.(shard_of t key) in
      if fkey < m.fmin then m.fmin <- fkey;
      if fkey > m.fmax then m.fmax <- fkey
    end

  (** [write t ~key ~ts entry] adds an entry to the memory component.  A
      same-key write replaces the previous in-memory entry (newest wins
      within a component).  [Put] values widen the range filter. *)
  let write t ~key ~ts entry =
    let m = t.mems.(shard_of t key) in
    let old = Mbt.put m.table key (ts, entry) in
    charge_mem_cmps t;
    let new_size = K.byte_size key + 8 + Entry.byte_size V.byte_size entry in
    (match old with
    | Some (_, old_e) ->
        m.bytes <-
          m.bytes - (K.byte_size key + 8 + Entry.byte_size V.byte_size old_e)
    | None -> ());
    m.bytes <- m.bytes + new_size;
    if ts < m.min_ts then m.min_ts <- ts;
    if ts > m.max_ts then m.max_ts <- ts;
    (match (entry, t.filter_of) with
    | Entry.Put v, Some f -> widen_filter t key (f v)
    | _ -> ());
    Lsm_sim.Env.charge_entry_visits t.env 1

  (** [mem_rollback t ~key ~prior] undoes a memory-component write as part
      of transaction rollback (Sec. 2.2: in-memory changes are rolled back
      by applying inverse operations): the current entry for [key] is
      removed and [prior] — the binding that the aborted write replaced,
      if any — is restored.  Byte accounting follows; the component ID and
      filter bounds remain conservatively widened, which is safe. *)
  let mem_rollback t ~key ~prior =
    let m = t.mems.(shard_of t key) in
    (match Mbt.remove m.table key with
    | Some (_, old_e) ->
        m.bytes <-
          m.bytes - (K.byte_size key + 8 + Entry.byte_size V.byte_size old_e)
    | None -> ());
    (match prior with
    | Some ((ts : int), entry) ->
        ignore (Mbt.put m.table key (ts, entry));
        m.bytes <-
          m.bytes + K.byte_size key + 8 + Entry.byte_size V.byte_size entry
    | None -> ());
    charge_mem_cmps t

  (** [reset_memory t] discards the memory component (crash simulation:
      under no-steal/no-force, everything unflushed is volatile). *)
  let reset_memory t =
    Array.iteri (fun i _ -> t.mems.(i) <- fresh_mem ()) t.mems

  (** [mem_find t key] searches only the memory component. *)
  let mem_find t key =
    let r = Mbt.find t.mems.(shard_of t key).table key in
    charge_mem_cmps t;
    match r with
    | None -> None
    | Some (ts, entry) ->
        Lsm_sim.Env.charge_entry_visits t.env 1;
        Some { key; ts; value = entry }

  (* ------------------------------------------------------------------ *)
  (* Bloom filter probing with cost accounting *)

  let probe_bloom t c key =
    match c.bloom with
    | None -> true
    | Some _ when c.quarantined ->
        (* Degraded read: the component failed a checksum, so its filter
           cannot be trusted — a corrupt filter's false negative would
           silently lose data.  Fall through to the B+-tree probe, which
           verifies every page it reads. *)
        let r = Lsm_sim.Env.resil t.env in
        r.Lsm_sim.Env.degraded_probes <- r.Lsm_sim.Env.degraded_probes + 1;
        true
    | Some f ->
        let st = Lsm_sim.Env.stats t.env in
        st.Lsm_sim.Io_stats.bloom_probes <- st.Lsm_sim.Io_stats.bloom_probes + 1;
        Lsm_sim.Env.charge_hashes t.env (Lsm_bloom.Filter.hashes_per_probe f);
        Lsm_sim.Env.charge_cache_lines t.env
          (Lsm_bloom.Filter.cache_lines_per_probe f);
        let maybe = Lsm_bloom.Filter.contains f (K.hash key) in
        if not maybe then
          st.Lsm_sim.Io_stats.bloom_negatives <-
            st.Lsm_sim.Io_stats.bloom_negatives + 1;
        maybe

  (* A positive Bloom answer whose component search then missed was a
     false positive; lookups report it here. *)
  let note_bloom_fp t c =
    (* A quarantined component's filter was never consulted, so a miss
       there is not a false positive. *)
    if c.bloom <> None && not c.quarantined then begin
      let st = Lsm_sim.Env.stats t.env in
      st.Lsm_sim.Io_stats.bloom_fps <- st.Lsm_sim.Io_stats.bloom_fps + 1
    end

  (* ------------------------------------------------------------------ *)
  (* Flush *)

  let build_bloom t rows =
    match t.config.Config.bloom with
    | None -> None
    | Some { Config.kind; fpr } ->
        let n = Array.length rows in
        let f = Lsm_bloom.Filter.create kind ~expected:n ~fpr in
        Array.iter (fun r -> Lsm_bloom.Filter.add f (K.hash r.key)) rows;
        Lsm_sim.Env.charge_hashes t.env (2 * n);
        Some f

  let mk_component t rows ~cmin_ts ~cmax_ts ~range_filter ~repaired_ts ~prov =
    let tree = Dbt.build t.env ~key_of:(fun r -> r.key) ~size_of:row_size rows in
    let bloom = build_bloom t rows in
    let bitmap =
      if t.config.Config.validity_bitmap then
        Some (Lsm_util.Bitset.create (Array.length rows))
      else None
    in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    {
      tree;
      bloom;
      cmin_ts;
      cmax_ts;
      range_filter;
      bitmap;
      repaired_ts;
      quarantined = false;
      seq;
      prov;
    }

  let shard_rows m =
    Array.map
      (fun (key, (ts, entry)) -> { key; ts; value = entry })
      (Mbt.to_sorted_array m.table)

  (* Flush pre-sorted rows into a fresh newest component.  [fault] is the
     fault-point prefix — "lsm.flush" for whole-memory flushes,
     "lsm.flush.shard" for per-shard ones — so the crash harness
     enumerates both windows. *)
  let flush_shard_rows t rows ~cmin_ts ~cmax_ts ~range_filter ~prov ~fault
      ~reset =
    Lsm_sim.Env.span t.env ~cat:(name t) "lsm.flush" @@ fun () ->
    Lsm_sim.Env.fault_point t.env (fault ^ ".begin");
    Lsm_sim.Env.charge_entry_visits t.env (Array.length rows);
    let c =
      mk_component t rows ~cmin_ts ~cmax_ts ~range_filter ~repaired_ts:0 ~prov
    in
    invalidate_view t;
    t.disk <- c :: t.disk;
    reset ();
    Lsm_obs.Ampstats.on_flush
      (Lsm_sim.Env.amp t.env)
      ~bytes:(component_size_bytes t c) ~rows:(Array.length rows);
    Lsm_sim.Env.fault_point t.env (fault ^ ".install")

  (** [flush t] turns a non-empty memory component into the newest disk
      component, inheriting the (possibly widened) memory range filter:
      every shard drains into one component (byte-identical to the
      unsharded tree's flush).  [flush ~shard:s t] flushes only shard
      [s] — its siblings keep their contents — announcing the
      [lsm.flush.shard.*] fault points and stamping the component with a
      per-shard {!flush_origin}. *)
  let flush ?shard t =
    match shard with
    | Some s ->
        let m = t.mems.(s) in
        if not (Mbt.is_empty m.table) then begin
          let range_filter =
            if t.filter_of <> None && m.fmin <= m.fmax then
              Some (m.fmin, m.fmax)
            else None
          in
          let prov =
            [
              {
                fo_shards = Array.length t.mems;
                fo_shard = s;
                fo_min_ts = m.min_ts;
                fo_max_ts = m.max_ts;
              };
            ]
          in
          flush_shard_rows t (shard_rows m) ~cmin_ts:m.min_ts
            ~cmax_ts:m.max_ts ~range_filter ~prov ~fault:"lsm.flush.shard"
            ~reset:(fun () -> t.mems.(s) <- fresh_mem ())
        end
    | None ->
        if not (mem_is_empty t) then begin
          let rows =
            if Array.length t.mems = 1 then shard_rows t.mems.(0)
            else begin
              (* Shard key sets are disjoint, so sorting the concatenation
                 reproduces exactly the rows a single memtable would have
                 held (differential byte-identity). *)
              let all =
                Array.concat (Array.to_list (Array.map shard_rows t.mems))
              in
              Array.sort
                (fun a b ->
                  Lsm_sim.Env.charge_comparisons t.env 1;
                  K.compare a.key b.key)
                all;
              all
            end
          in
          let cmin_ts, cmax_ts = mem_id t in
          let range_filter =
            if t.filter_of = None then None
            else
              Array.fold_left
                (fun acc m ->
                  if m.fmin <= m.fmax then
                    match acc with
                    | None -> Some (m.fmin, m.fmax)
                    | Some (a, b) -> Some (min a m.fmin, max b m.fmax)
                  else acc)
                None t.mems
          in
          let prov =
            [
              {
                fo_shards = Array.length t.mems;
                fo_shard = -1;
                fo_min_ts = cmin_ts;
                fo_max_ts = cmax_ts;
              };
            ]
          in
          flush_shard_rows t rows ~cmin_ts ~cmax_ts ~range_filter ~prov
            ~fault:"lsm.flush" ~reset:(fun () -> reset_memory t)
        end

  (* ------------------------------------------------------------------ *)
  (* Merge *)

  let row_valid c i =
    match c.bitmap with None -> true | Some b -> not (Lsm_util.Bitset.get b i)

  (** An in-flight incremental merge: the k-way reconciling merge of
      {!merge} broken into explicit steps so a scheduler can interleave
      several independent merges deterministically on one simulated clock
      (the overlapping-maintenance pipeline).  Between {!merge_start} and
      {!merge_finish} the job only reads its input components and
      accumulates rows in memory — [t.disk] is untouched, so jobs on
      *different* trees (or provably disjoint ranges) never conflict.
      Two concurrent jobs on overlapping ranges of one tree are a caller
      bug. *)
  type merge_job = {
    mj_inputs : disk_component array;
    mj_scans : row Dbt.Scan.s array;
    mj_heap : (K.t * int * row) Lsm_util.Heap.t;
    mutable mj_out : row list;  (** merged rows, newest-emitted first *)
    mutable mj_last_key : K.t option;
    mutable mj_rows_done : int;
    mj_input_bytes : int;
    mj_input_rows : int;
    mj_includes_oldest : bool;
    mj_drop_ts : int;
        (** tombstone barrier captured at start — a concurrent repair
            raising a secondary's repairedTS mid-merge must not change
            this job's output (serial equivalence) *)
    mj_extra_invalid : disk_component -> int -> bool;
  }

  let mj_push_from t j p =
    let rec go () =
      match Dbt.Scan.next t.env j.mj_scans.(p) with
      | None -> ()
      | Some (i, row) ->
          if
            row_valid j.mj_inputs.(p) i
            && not (j.mj_extra_invalid j.mj_inputs.(p) i)
          then Lsm_util.Heap.push j.mj_heap (row.key, p, row)
          else go ()
    in
    go ()

  (** [merge_start t ~first ~last] opens an incremental merge of the
      contiguous component range [first..last] (indices into
      {!components}, 0 = newest).  Announces [lsm.merge.begin]. *)
  let merge_start ?(extra_invalid = fun _ _ -> false) t ~first ~last =
    let comps = Array.of_list t.disk in
    let n = Array.length comps in
    if not (0 <= first && first <= last && last < n) then
      invalid_arg "Lsm_tree.merge: bad range";
    let inputs = Array.sub comps first (last - first + 1) in
    Lsm_sim.Env.fault_point t.env "lsm.merge.begin";
    let j =
      {
        mj_inputs = inputs;
        mj_scans = Array.map (fun c -> Dbt.Scan.seek t.env c.tree None) inputs;
        mj_heap =
          (* K-way merge ordered by (key, input priority); input 0 is
             newest. *)
          Lsm_util.Heap.create (fun (k1, p1, _) (k2, p2, _) ->
              Lsm_sim.Env.charge_comparisons t.env 1;
              let c = K.compare k1 k2 in
              if c <> 0 then c else compare (p1 : int) p2);
        mj_out = [];
        mj_last_key = None;
        mj_rows_done = 0;
        mj_input_bytes =
          Array.fold_left (fun acc c -> acc + component_size_bytes t c) 0 inputs;
        mj_input_rows =
          Array.fold_left (fun acc c -> acc + component_rows c) 0 inputs;
        mj_includes_oldest = last = n - 1;
        mj_drop_ts = t.tombstone_drop_ts;
        mj_extra_invalid = extra_invalid;
      }
    in
    Array.iteri (fun p _ -> mj_push_from t j p) inputs;
    j

  (** [merge_step t j ~rows] advances the merge by up to [rows] output
      decisions; [false] once the input streams are exhausted. *)
  let merge_step t j ~rows =
    let budget = ref rows in
    while !budget > 0 && not (Lsm_util.Heap.is_empty j.mj_heap) do
      decr budget;
      let k, p, row = Lsm_util.Heap.pop j.mj_heap in
      mj_push_from t j p;
      let dup =
        match j.mj_last_key with
        | Some lk -> K.compare lk k = 0
        | None -> false
      in
      Lsm_sim.Env.charge_comparisons t.env 1;
      j.mj_last_key <- Some k;
      if not dup then
        if
          Entry.is_del row.value && j.mj_includes_oldest
          && row.ts <= j.mj_drop_ts
        then ()
        else begin
          j.mj_out <- row :: j.mj_out;
          j.mj_rows_done <- j.mj_rows_done + 1
        end
    done;
    not (Lsm_util.Heap.is_empty j.mj_heap)

  (** [merge_finish t j] builds and installs the merged component,
      deletes the inputs' files, and announces [lsm.merge.install].  The
      input components must still be present as a contiguous run —
      located by physical identity, so flushes that *prepend* components
      while the merge was in flight (per-shard flushes overlapping
      merges) are tolerated; any other mutation of the inputs is
      rejected. *)
  let merge_finish t j =
    let inputs = j.mj_inputs in
    let k = Array.length inputs in
    let comps = Array.of_list t.disk in
    let n = Array.length comps in
    let found = ref (-1) in
    Array.iteri
      (fun i c -> if !found < 0 && c == inputs.(0) then found := i)
      comps;
    let stable =
      !found >= 0
      && !found + k <= n
      && Array.for_all
           (fun i -> comps.(!found + i) == inputs.(i))
           (Array.init k Fun.id)
    in
    if not stable then invalid_arg "Lsm_tree.merge_finish: tree changed";
    let first = !found in
    let last = first + k - 1 in
    let rows = Array.of_list (List.rev j.mj_out) in
    let cmin_ts =
      Array.fold_left (fun acc c -> min acc c.cmin_ts) max_int inputs
    in
    let cmax_ts = Array.fold_left (fun acc c -> max acc c.cmax_ts) (-1) inputs in
    let repaired_ts =
      Array.fold_left (fun acc c -> min acc c.repaired_ts) max_int inputs
    in
    let repaired_ts = if repaired_ts = max_int then 0 else repaired_ts in
    let range_filter =
      match t.filter_of with
      | None -> None
      | Some f ->
          if j.mj_includes_oldest then begin
            (* No anti-matter survives a bottom merge: recompute tightly. *)
            let fmin = ref max_int and fmax = ref min_int in
            Array.iter
              (fun r ->
                match r.value with
                | Entry.Put v ->
                    let x = f v in
                    if x < !fmin then fmin := x;
                    if x > !fmax then fmax := x
                | Entry.Del -> ())
              rows;
            if !fmin <= !fmax then Some (!fmin, !fmax) else None
          end
          else
            (* Anti-matter may survive: the union of input filters is the
               only safe bound. *)
            Array.fold_left
              (fun acc c ->
                match (acc, c.range_filter) with
                | None, x | x, None -> x
                | Some (a, b), Some (c', d) -> Some (min a c', max b d))
              None inputs
    in
    let prov = List.concat_map (fun c -> c.prov) (Array.to_list inputs) in
    let merged =
      mk_component t rows ~cmin_ts ~cmax_ts ~range_filter ~repaired_ts ~prov
    in
    invalidate_view t;
    t.disk <-
      List.filteri (fun i _ -> i < first) t.disk
      @ [ merged ]
      @ List.filteri (fun i _ -> i > last) t.disk;
    Array.iter (fun c -> Dbt.delete t.env c.tree) inputs;
    Lsm_obs.Ampstats.on_merge
      (Lsm_sim.Env.amp t.env)
      ~bytes_read:j.mj_input_bytes
      ~bytes_written:(component_size_bytes t merged)
      ~rows_in:j.mj_input_rows ~rows_out:(Array.length rows);
    Lsm_sim.Env.fault_point t.env "lsm.merge.install";
    merged

  (** [merge t ~first ~last] merges the contiguous component range
      [first..last] (indices into {!components}, 0 = newest) into one new
      component: a reconciling k-way merge that keeps the newest entry per
      key, drops bitmap-invalidated entries, and — when the range includes
      the oldest component — drops anti-matter.  Returns the new
      component.  The inputs' files are deleted.  (Equivalent to running
      an incremental {!merge_start}/{!merge_step}/{!merge_finish} job to
      completion without interleaving.) *)
  let merge ?extra_invalid t ~first ~last =
    Lsm_sim.Env.span t.env ~cat:(name t) "lsm.merge" @@ fun () ->
    let j = merge_start ?extra_invalid t ~first ~last in
    while merge_step t j ~rows:max_int do
      ()
    done;
    merge_finish t j

  (** [build_component t rows ...] constructs a disk component from
      pre-merged, key-sorted rows without installing it — the low-level
      piece used by the incremental concurrent-merge machinery (Sec. 5.3),
      which interleaves writers with the component builder and therefore
      cannot use the atomic {!merge}. *)
  let build_component ?(prov = []) t rows ~cmin_ts ~cmax_ts ~range_filter
      ~repaired_ts =
    mk_component t rows ~cmin_ts ~cmax_ts ~range_filter ~repaired_ts ~prov

  (** [replace_range t ~first ~last c] atomically replaces the component
      range [first..last] (newest-first indices) with [c], deleting the
      old components' files. *)
  let replace_range t ~first ~last c =
    let comps = Array.of_list t.disk in
    let n = Array.length comps in
    if not (0 <= first && first <= last && last < n) then
      invalid_arg "Lsm_tree.replace_range: bad range";
    invalidate_view t;
    t.disk <-
      List.filteri (fun i _ -> i < first) t.disk
      @ [ c ]
      @ List.filteri (fun i _ -> i > last) t.disk;
    for i = first to last do
      Dbt.delete t.env comps.(i).tree
    done

  (** [remove_component t ~at] removes the component at newest-first index
      [at], deleting its file.  Recovery-only: rolls a tree back to a
      crash-consistent cut when a correlated index's flush did not survive
      the crash (the discarded entries are still in the WAL and are redone
      into memory). *)
  let remove_component t ~at =
    let comps = Array.of_list t.disk in
    let n = Array.length comps in
    if not (0 <= at && at < n) then invalid_arg "Lsm_tree.remove_component";
    invalidate_view t;
    t.disk <- List.filteri (fun i _ -> i <> at) t.disk;
    Dbt.delete t.env comps.(at).tree

  (** [maybe_merge t policy] applies a merge policy to this tree's own
      components (the paper's default: "each LSM-tree is merged
      independently").  Returns the merged component if a merge ran. *)
  let maybe_merge t policy =
    let comps = Array.of_list t.disk in
    let n = Array.length comps in
    if n < 2 then None
    else begin
      (* Policy works oldest-first. *)
      let sizes =
        Array.init n (fun i -> component_size_bytes t comps.(n - 1 - i))
      in
      match Merge_policy.pick policy ~sizes with
      | None -> None
      | Some (f_old, l_old) ->
          (* Translate oldest-first indices to newest-first. *)
          let first = n - 1 - l_old and last = n - 1 - f_old in
          Some (merge t ~first ~last)
    end

  (* ------------------------------------------------------------------ *)
  (* Point lookups (Sec. 3.2) *)

  type lookup_opts = {
    batched : bool;  (** batched point lookup algorithm *)
    batch_bytes : int;  (** batching memory (paper default: 16MB) *)
    stateful : bool;  (** stateful B+-tree search cursors ("sLookup") *)
    use_hints : bool;  (** component-ID propagation ("pID", Jia) *)
  }

  let default_lookup_opts =
    {
      batched = true;
      batch_bytes = 16 * 1024 * 1024;
      stateful = true;
      use_hints = false;
    }

  (** A query key: [hint_ts] is the timestamp of the secondary-index entry
      that produced it (0 = no hint).  With [use_hints], components whose
      maxTS is below the hint cannot hold the sought version and are
      skipped before their Bloom filter is even probed. *)
  type query_key = { qkey : K.t; hint_ts : int }

  let plain_keys keys = Array.map (fun k -> { qkey = k; hint_ts = 0 }) keys

  (** [lookup_one t key] is the newest entry for [key] across the memory
      component and all disk components ([None] if the key was never
      written or its newest disk entry is bitmap-invalidated).  The
      single-key path used by ingestion-time point lookups.

      A bitmap-invalidated hit terminates the search: the bit means the
      entry was deleted or superseded, and any superseding version is
      strictly newer, hence already searched. *)
  let lookup_one t key =
    Lsm_sim.Env.span t.env ~cat:(name t) "lsm.lookup" @@ fun () ->
    match mem_find t key with
    | Some r ->
        Lsm_sim.Env.explain_count t.env "mem_hits" 1;
        Some r
    | None ->
        let rec go = function
          | [] -> None
          | c :: rest ->
              Lsm_sim.Env.explain_count t.env "components_probed" 1;
              if probe_bloom t c key then
                match Dbt.find t.env c.tree key with
                | Some (pos, row) -> if row_valid c pos then Some row else None
                | None ->
                    note_bloom_fp t c;
                    go rest
              else go rest
        in
        go t.disk

  (** [disk_find t key] locates the newest *disk* entry for [key] as
      (component, row position, row), ignoring the memory component and any
      validity bitmap (callers inspect validity themselves).  Used by the
      Mutable-bitmap strategy to find the bit to flip (Sec. 5.2). *)
  let disk_find t key =
    let rec go = function
      | [] -> None
      | c :: rest -> (
          if probe_bloom t c key then
            match Dbt.find t.env c.tree key with
            | Some (pos, row) -> Some (c, pos, row)
            | None ->
                note_bloom_fp t c;
                go rest
          else go rest)
    in
    go t.disk

  (** [component_row_valid c i] consults the validity bitmap. *)
  let component_row_valid = row_valid

  (** [rows_of c] is the component's row array (no I/O charged — callers
      that walk it outside a scan must charge explicitly). *)
  let rows_of c = Dbt.rows c.tree

  (** [charge_component_scan t c] charges the I/O and CPU of a full
      sequential scan of [c] without materializing anything (standalone
      repair reads the component it is repairing; merge repair gets the
      rows for free as a by-product of the merge scan, Fig. 7). *)
  let charge_component_scan t c =
    Lsm_sim.Sfile.scan_all t.env (Dbt.file c.tree);
    Lsm_sim.Env.charge_entry_visits t.env (Dbt.nrows c.tree)

  (** [mem_filter t] is the memory component's current range-filter
      bounds (the union over shards), if the tree has a filter and the
      component is non-empty. *)
  let mem_filter t =
    if t.filter_of = None then None
    else
      Array.fold_left
        (fun acc m ->
          if m.fmin <= m.fmax then
            match acc with
            | None -> Some (m.fmin, m.fmax)
            | Some (a, b) -> Some (min a m.fmin, max b m.fmax)
          else acc)
        None t.mems

  (** [lookup_batch t opts qkeys ~emit] resolves many point lookups.
      [qkeys] must be sorted ascending by key.  [emit key row_opt] is
      called exactly once per query key; emission order is the fetch order
      (memory hits, then per-component hits newest-to-oldest within each
      batch), which for the batched algorithm is *not* global key order —
      the trade-off Fig. 12d measures. *)
  let lookup_batch t opts qkeys ~emit =
    let nq = Array.length qkeys in
    if nq > 0 then
      Lsm_sim.Env.span t.env ~cat:(name t)
        (if opts.batched then "lsm.lookup.batched" else "lsm.lookup.naive")
      @@ fun () ->
      begin
      Lsm_sim.Env.explain_annotate t.env
        [
          ("keys", string_of_int nq);
          ("stateful", string_of_bool opts.stateful);
          ("hints", string_of_bool opts.use_hints);
        ];
      let comps = Array.of_list t.disk in
      let cursors =
        if opts.stateful then
          Some (Array.map (fun c -> Dbt.Cursor.create c.tree) comps)
        else None
      in
      let find_in ci key =
        match cursors with
        | Some cs -> Dbt.Cursor.find t.env cs.(ci) key
        | None -> Dbt.find t.env comps.(ci).tree key
      in
      let per_batch =
        if not opts.batched then 1
        else begin
          let key_bytes =
            K.byte_size qkeys.(0).qkey + 16 (* ts + found slot *)
          in
          max 1 (opts.batch_bytes / key_bytes)
        end
      in
      let start = ref 0 in
      while !start < nq do
        let stop = min nq (!start + per_batch) in
        let bn = stop - !start in
        let resolved = Array.make bn false in
        let remaining = ref bn in
        let resolve i key row_opt =
          resolved.(i) <- true;
          decr remaining;
          emit key row_opt
        in
        (* Memory component first. *)
        for i = 0 to bn - 1 do
          match mem_find t qkeys.(!start + i).qkey with
          | Some r ->
              Lsm_sim.Env.explain_count t.env "mem_hits" 1;
              resolve i qkeys.(!start + i).qkey (Some r)
          | None -> ()
        done;
        (* Components newest to oldest; each component visited once per
           batch, its candidate keys probed in ascending order. *)
        let ci = ref 0 in
        while !remaining > 0 && !ci < Array.length comps do
          let c = comps.(!ci) in
          for i = 0 to bn - 1 do
            if not resolved.(i) then begin
              let qk = qkeys.(!start + i) in
              let skip = opts.use_hints && c.cmax_ts < qk.hint_ts in
              if skip then
                Lsm_sim.Env.explain_count t.env "hint_skips" 1
              else begin
                Lsm_sim.Env.explain_count t.env "components_probed" 1;
                if probe_bloom t c qk.qkey then
                  match find_in !ci qk.qkey with
                  | Some (pos, row) ->
                      (* A bitmap-invalidated hit resolves the key to absent:
                         any superseding version is strictly newer and was
                         already searched. *)
                      if row_valid c pos then resolve i qk.qkey (Some row)
                      else resolve i qk.qkey None
                  | None -> note_bloom_fp t c
              end
            end
          done;
          incr ci
        done;
        for i = 0 to bn - 1 do
          if not resolved.(i) then emit qkeys.(!start + i).qkey None
        done;
        start := stop
      done
    end

  (* ------------------------------------------------------------------ *)
  (* Scans *)

  type scan_spec = {
    lo : K.t option;  (** inclusive *)
    hi : K.t option;  (** inclusive *)
    reconcile : bool;
        (** newest-wins semantics across components; [false] scans each
            component independently (Mutable-bitmap strategy, Sec. 6.4.2) *)
    respect_bitmap : bool;
    include_mem : bool;
    emit_del : bool;
        (** also emit anti-matter entries that win reconciliation (needed
            by validation logic that must see deletions; default: queries
            only see live data) *)
    only : disk_component list option;
        (** restrict to these disk components (newest-first); [None] = all.
            Callers use this for range-filter pruning. *)
  }

  let full_scan_spec =
    {
      lo = None;
      hi = None;
      reconcile = true;
      respect_bitmap = true;
      include_mem = true;
      emit_del = false;
      only = None;
    }

  (* Materialize the in-range slice of the memory component: each shard
     contributes its sorted in-range rows; shard key sets are disjoint,
     so sorting the concatenation reproduces the single-memtable slice
     byte for byte. *)
  let mem_slice t spec =
    if not spec.include_mem then [||]
    else begin
      let hi_ok k =
        match spec.hi with
        | None -> true
        | Some h ->
            Lsm_sim.Env.charge_comparisons t.env 1;
            K.compare k h <= 0
      in
      let count = ref 0 in
      let slice_one m =
        let buf = ref [] in
        (match spec.lo with
        | None ->
            Mbt.iter m.table (fun k (ts, e) ->
                if hi_ok k then begin
                  buf := { key = k; ts; value = e } :: !buf;
                  incr count
                end)
        | Some lo ->
            Mbt.iter_from m.table lo (fun k (ts, e) ->
                if hi_ok k then begin
                  buf := { key = k; ts; value = e } :: !buf;
                  incr count;
                  true
                end
                else false));
        Array.of_list (List.rev !buf)
      in
      let rows =
        if Array.length t.mems = 1 then slice_one t.mems.(0)
        else begin
          let all =
            Array.concat (Array.to_list (Array.map slice_one t.mems))
          in
          Array.sort
            (fun a b ->
              Lsm_sim.Env.charge_comparisons t.env 1;
              K.compare a.key b.key)
            all;
          all
        end
      in
      charge_mem_cmps t;
      Lsm_sim.Env.charge_entry_visits t.env !count;
      rows
    end

  (* Reconciling scan served from the sorted view: one anchor binary
     search plus bounded per-run gallops to position, then a sequential
     walk of the selector stream 2-way merged with the memory slice
     (memory is strictly newer than every disk component, so it wins
     ties).  Within a disk key group the winner is the first live
     position — runs are ordered newest-first — which reproduces the heap
     path's semantics exactly, including "an older valid duplicate wins
     when the newest is bitmap-invalidated". *)
  let scan_view t spec ~f =
    let comps_a = Array.of_list t.disk in
    let v = ensure_view t comps_a in
    let mask =
      match spec.only with
      | None -> None
      | Some cs ->
          let m = Array.make (Array.length comps_a) false in
          List.iter
            (fun c ->
              Array.iteri (fun i c' -> if c' == c then m.(i) <- true) comps_a)
            cs;
          Some m
    in
    let valid r i = (not spec.respect_bitmap) || row_valid comps_a.(r) i in
    let it = View.start t.env v ~lo:spec.lo ~hi:spec.hi ~mask ~valid in
    let mem_rows = mem_slice t spec in
    let nm = Array.length mem_rows in
    let mi = ref 0 in
    let vnext = ref (View.next t.env it) in
    let emit row ~src_repaired =
      match row.value with
      | Entry.Put _ -> f row ~src_repaired
      | Entry.Del -> if spec.emit_del then f row ~src_repaired
    in
    let continue = ref true in
    while !continue do
      match (!mi < nm, !vnext) with
      | false, None -> continue := false
      | true, None ->
          emit mem_rows.(!mi) ~src_repaired:0;
          incr mi
      | false, Some (_, r, row) ->
          emit row ~src_repaired:comps_a.(r).repaired_ts;
          vnext := View.next t.env it
      | true, Some (vk, r, row) ->
          let m = mem_rows.(!mi) in
          Lsm_sim.Env.charge_comparisons t.env 1;
          let c = K.compare m.key vk in
          if c < 0 then begin
            emit m ~src_repaired:0;
            incr mi
          end
          else begin
            (if c = 0 then begin
               (* Memory supersedes the whole disk group. *)
               emit m ~src_repaired:0;
               incr mi
             end
             else emit row ~src_repaired:comps_a.(r).repaired_ts);
            vnext := View.next t.env it
          end
    done;
    Lsm_sim.Env.explain_count t.env "view_scans" 1;
    Lsm_sim.Env.explain_count t.env "view_segments" (View.segments it);
    Lsm_sim.Env.explain_count t.env "view_rows_skipped" (View.skipped it);
    let vs = Lsm_sim.Env.view_stats t.env in
    vs.Lsm_sim.Env.segments <- vs.Lsm_sim.Env.segments + View.segments it;
    vs.Lsm_sim.Env.rows_skipped <-
      vs.Lsm_sim.Env.rows_skipped + View.skipped it;
    vs.Lsm_sim.Env.rows_emitted <- vs.Lsm_sim.Env.rows_emitted + View.emitted it

  (* A reconciling scan prefers the sorted view.  A restricted ([only])
     scan reuses a fresh view through a run mask but never *triggers* a
     build: repair and time-range scans run right after merges, and
     rebuilding the whole view to read a component subset would tax
     ingest.  Anything else falls back to the heap merge. *)
  let view_usable t spec =
    spec.reconcile && t.views_enabled
    && List.length t.disk >= view_min_components
    &&
    match spec.only with
    | None -> true
    | Some [] -> false
    | Some cs -> (
        match t.view with
        | Some (_, built) ->
            view_matches (Array.of_list t.disk) built
            && List.for_all (fun c -> List.memq c t.disk) cs
        | None -> false)

  (** [scan t spec ~f] streams entries to [f row ~src_repaired], where
      [src_repaired] is the [repaired_ts] of the entry's source component
      (0 for the memory component — never repaired).  With [reconcile],
      output is in ascending key order with newest-wins semantics and
      anti-matter suppressing older entries (anti-matter itself is emitted
      only under [emit_del]).  Without it, components are emitted one by
      one, memory first then newest-to-oldest, each in key order. *)
  let scan t spec ~f =
    let comps =
      match spec.only with Some cs -> cs | None -> t.disk
    in
    let in_hi k =
      match spec.hi with
      | None -> true
      | Some h ->
          Lsm_sim.Env.charge_comparisons t.env 1;
          K.compare k h <= 0
    in
    if view_usable t spec then scan_view t spec ~f
    else if spec.reconcile then begin
      (if t.views_enabled && List.length t.disk >= view_min_components then begin
         let vs = Lsm_sim.Env.view_stats t.env in
         vs.Lsm_sim.Env.fallbacks <- vs.Lsm_sim.Env.fallbacks + 1
       end);
      (* Streams: 0 = memory (newest), then disk components in order. *)
      let mem_rows = mem_slice t spec in
      let mem_pos = ref 0 in
      let comps_a = Array.of_list comps in
      let scans =
        Array.map (fun c -> Dbt.Scan.seek t.env c.tree spec.lo) comps_a
      in
      let cmp (k1, p1, _) (k2, p2, _) =
        Lsm_sim.Env.charge_comparisons t.env 1;
        let c = K.compare k1 k2 in
        if c <> 0 then c else compare (p1 : int) p2
      in
      let heap = Lsm_util.Heap.create cmp in
      let push_mem () =
        if !mem_pos < Array.length mem_rows then begin
          let r = mem_rows.(!mem_pos) in
          incr mem_pos;
          if in_hi r.key then Lsm_util.Heap.push heap (r.key, 0, r)
        end
      in
      let rec push_disk p =
        match Dbt.Scan.next t.env scans.(p) with
        | None -> ()
        | Some (i, row) ->
            if not (in_hi row.key) then ()
            else if
              spec.respect_bitmap && not (row_valid comps_a.(p) i)
            then push_disk p
            else Lsm_util.Heap.push heap (row.key, p + 1, row)
      in
      push_mem ();
      Array.iteri (fun p _ -> push_disk p) comps_a;
      let last_key = ref None in
      while not (Lsm_util.Heap.is_empty heap) do
        let k, p, row = Lsm_util.Heap.pop heap in
        let src_repaired =
          if p = 0 then 0 else comps_a.(p - 1).repaired_ts
        in
        if p = 0 then push_mem () else push_disk (p - 1);
        let dup =
          match !last_key with
          | Some lk ->
              Lsm_sim.Env.charge_comparisons t.env 1;
              K.compare lk k = 0
          | None -> false
        in
        last_key := Some k;
        if not dup then
          match row.value with
          | Entry.Put _ -> f row ~src_repaired
          | Entry.Del -> if spec.emit_del then f row ~src_repaired
      done
    end
    else begin
      (* Component-at-a-time: bitmaps have already removed stale versions,
         so no cross-component reconciliation is necessary. *)
      let emit_mem () =
        Array.iter
          (fun r ->
            match r.value with
            | Entry.Put _ -> f r ~src_repaired:0
            | Entry.Del -> if spec.emit_del then f r ~src_repaired:0)
          (mem_slice t spec)
      in
      emit_mem ();
      List.iter
        (fun c ->
          let s = Dbt.Scan.seek t.env c.tree spec.lo in
          let continue = ref true in
          while !continue do
            match Dbt.Scan.next t.env s with
            | None -> continue := false
            | Some (i, row) ->
                if not (in_hi row.key) then continue := false
                else if spec.respect_bitmap && not (row_valid c i) then ()
                else
                  (match row.value with
                  | Entry.Put _ -> f row ~src_repaired:c.repaired_ts
                  | Entry.Del ->
                      if spec.emit_del then f row ~src_repaired:c.repaired_ts)
          done)
        comps
    end

  (* ------------------------------------------------------------------ *)
  (* Bitmap and repair bookkeeping *)

  (** [ensure_bitmap c] allocates an all-valid bitmap on demand. *)
  let ensure_bitmap c =
    match c.bitmap with
    | Some b -> b
    | None ->
        let b = Lsm_util.Bitset.create (Dbt.nrows c.tree) in
        c.bitmap <- Some b;
        b

  (** [invalidate c pos] marks entry [pos] of [c] invalid (bit 0 -> 1). *)
  let invalidate c pos = Lsm_util.Bitset.set (ensure_bitmap c) pos

  (** [revalidate c pos] flips a bit back (aborts only; Sec. 5.2). *)
  let revalidate c pos =
    match c.bitmap with Some b -> Lsm_util.Bitset.clear b pos | None -> ()

  let set_repaired_ts c ts = c.repaired_ts <- ts

  (** [find_position t c key] locates [key]'s row index within component
      [c], charging the lookup (used by Mutable-bitmap deletes to find the
      bit to set). *)
  let find_position t c key =
    if Dbt.is_empty c.tree then None
    else begin
      let i = Dbt.lower_bound_row t.env c.tree key in
      if i < Dbt.nrows c.tree then begin
        Lsm_sim.Env.charge_comparisons t.env 1;
        if K.compare (Dbt.keys c.tree).(i) key = 0 then Some i else None
      end
      else None
    end
end
