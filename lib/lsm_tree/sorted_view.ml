(** REMIX-style cross-component sorted views (Zhong et al., FAST 2021;
    see PAPERS.md).

    A reconciling LSM range scan normally pays a k-way heap merge: every
    row costs O(log k) charged comparisons to pop, plus a push for its
    successor.  A sorted view removes that per-row cost by persisting the
    *global sort order* across a stable set of disk components ("runs"):

    - a [sel]/[pos] pair per global position — which run the position's
      row lives in and its row index there (the "run selectors");
    - an [eq_prev] bit per position marking key groups (duplicate keys
      across runs sort adjacently, newest run first);
    - sparse *anchors* every [stride] positions: the anchor's key plus a
      per-run cursor offset (how many rows of each run precede the
      anchor), so a range scan binary-searches the anchors and then
      gallops each run cursor with {!Lsm_util.Search.exponential_lower_bound}
      over at most one stride of slack.

    A scan is then: one O(log #anchors) binary search, k bounded gallops,
    and a sequential walk of the selector stream — about one comparison
    per key *group* (the upper-bound check) instead of O(log k) per row.
    Reconciliation itself becomes free: within a key group the winner is
    the first live position (runs are ordered newest-first), and validity
    bitmaps are consulted at scan time, so views stay correct under
    repair, quarantine and the Mutable-bitmap strategy without rebuilds.

    Views are charged through {!Lsm_sim.Env} like any other structure: the
    build pays the merge comparisons, one entry visit per position and
    sequential writes of the view's own pages (2 bytes per position for
    selector + group bit, plus per-anchor metadata); scans pay read-ahead
    page fetches on the view file and on the data leaves of the rows they
    actually emit — skipped positions never touch their data pages, which
    is the other half of the REMIX win.

    This module is deliberately ignorant of components, bitmaps and
    anti-matter: it orders abstract runs.  [Lsm_tree] owns the lifecycle
    (build at first reconciling scan over a stable component set,
    invalidate whenever the component list changes) and layers newest-wins
    semantics, the memory component and deletion handling on top. *)

module Make (K : Lsm_util.Intf.ORDERED) = struct
  (** One run: the key/row arrays of a disk component plus enough leaf
      geometry to charge the same page fetches a sequential scan would. *)
  type 'row run = {
    keys : K.t array;  (** ascending *)
    rows : 'row array;
    file : Lsm_sim.Sfile.t;  (** data file holding the rows' leaf pages *)
    leaf_of_row : int -> int;
    leaf_pages : int;
  }

  type 'row t = {
    runs : 'row run array;
    n : int;  (** total positions = sum of run lengths *)
    sel : int array;  (** run index of each position *)
    pos : int array;  (** row index within that run *)
    eq_prev : Lsm_util.Bitset.t;  (** same key as the previous position *)
    stride : int;
    anchors : K.t array;  (** key at position [a * stride] *)
    anchor_offs : int array;
        (** [(a * nruns) + r]: rows of run [r] before position [a * stride] *)
    vfile : Lsm_sim.Sfile.t;  (** the view's own pages *)
    vpages : int;
    positions_per_page : int;
  }

  let default_stride = 64

  let positions t = t.n
  let anchor_count t = Array.length t.anchors
  let run_count t = Array.length t.runs
  let size_bytes env t = Lsm_sim.Sfile.size_bytes env t.vfile

  (** [build env runs] merges the runs' key streams once (charging the
      comparisons, one entry visit per position, and sequential writes of
      the view pages) and returns the persistent view.  Runs must be
      individually sorted; ties across runs order by run index (callers
      pass newest first, giving newest-first groups). *)
  let build env ?(stride = default_stride) runs =
    let nruns = Array.length runs in
    let n = Array.fold_left (fun a r -> a + Array.length r.keys) 0 runs in
    let sel = Array.make n 0 in
    let pos = Array.make n 0 in
    let eq_prev = Lsm_util.Bitset.create n in
    let cmp (k1, r1, _) (k2, r2, _) =
      Lsm_sim.Env.charge_comparisons env 1;
      let c = K.compare k1 k2 in
      if c <> 0 then c else compare (r1 : int) r2
    in
    let heap = Lsm_util.Heap.create cmp in
    let next_idx = Array.make nruns 0 in
    let push r =
      let i = next_idx.(r) in
      if i < Array.length runs.(r).keys then begin
        next_idx.(r) <- i + 1;
        Lsm_util.Heap.push heap (runs.(r).keys.(i), r, i)
      end
    in
    for r = 0 to nruns - 1 do
      push r
    done;
    let nanchors = if n = 0 then 0 else ((n - 1) / stride) + 1 in
    let anchor_offs = Array.make (nanchors * nruns) 0 in
    let anchors_rev = ref [] in
    let consumed = Array.make nruns 0 in
    let last = ref None in
    let j = ref 0 in
    while not (Lsm_util.Heap.is_empty heap) do
      let k, r, i = Lsm_util.Heap.pop heap in
      push r;
      if !j mod stride = 0 then begin
        anchors_rev := k :: !anchors_rev;
        Array.blit consumed 0 anchor_offs (!j / stride * nruns) nruns
      end;
      sel.(!j) <- r;
      pos.(!j) <- i;
      consumed.(r) <- consumed.(r) + 1;
      (match !last with
      | Some lk ->
          Lsm_sim.Env.charge_comparisons env 1;
          if K.compare lk k = 0 then Lsm_util.Bitset.set eq_prev !j
      | None -> ());
      last := Some k;
      incr j
    done;
    Lsm_sim.Env.charge_entry_visits env n;
    (* Simulated footprint: 2 bytes per position (run selector + group
       bit) and, per anchor, the anchor key plus a 4-byte cursor offset
       per run. *)
    let anchor_bytes =
      List.fold_left
        (fun a k -> a + K.byte_size k + (4 * nruns))
        0 !anchors_rev
    in
    let page_size = Lsm_sim.Env.page_size env in
    let vpages =
      if n = 0 then 0 else ((2 * n) + anchor_bytes + page_size - 1) / page_size
    in
    let vfile = Lsm_sim.Sfile.create env in
    (* If the append dies mid-build (retry exhaustion or an injected
       crash), delete the file so no partially-written view leaks; the
       caller's slot still holds no view and the next scan rebuilds. *)
    (try Lsm_sim.Sfile.append_pages env vfile vpages
     with e ->
       Lsm_sim.Sfile.delete env vfile;
       raise e);
    let vs = Lsm_sim.Env.view_stats env in
    vs.Lsm_sim.Env.builds <- vs.Lsm_sim.Env.builds + 1;
    vs.Lsm_sim.Env.build_rows <- vs.Lsm_sim.Env.build_rows + n;
    vs.Lsm_sim.Env.build_pages <- vs.Lsm_sim.Env.build_pages + vpages;
    {
      runs;
      n;
      sel;
      pos;
      eq_prev;
      stride;
      anchors = Array.of_list (List.rev !anchors_rev);
      anchor_offs;
      vfile;
      vpages;
      positions_per_page = max 1 (page_size / 2);
    }

  (** [release env t] deletes the view's pages (structural invalidation or
      tree teardown). *)
  let release env t = Lsm_sim.Sfile.delete env t.vfile

  (* ------------------------------------------------------------------ *)
  (* Scanning *)

  type 'row iter = {
    view : 'row t;
    hi : K.t option;  (** inclusive *)
    mask : bool array option;  (** include run [r]?  [None] = all *)
    valid : int -> int -> bool;  (** run -> row index -> live? *)
    mutable j : int;  (** next unconsumed position *)
    mutable finished : bool;
    (* Per-run read-ahead windows over the data leaves, mirroring
       [Disk_btree.Scan.fetch_leaf]. *)
    cur_leaf : int array;
    pref : int array;
    (* Read-ahead window over the view's own pages. *)
    mutable vpage : int;
    mutable vpref : int;
    (* Stats, reported into [Env.view_stats] by the caller. *)
    mutable segments : int;
    mutable next_seg : int;
    mutable skipped : int;
    mutable emitted : int;
  }

  let segments it = it.segments
  let skipped it = it.skipped
  let emitted it = it.emitted

  (** [start env t ~lo ~hi ~mask ~valid] positions an iterator at the
      first key group >= [lo]: binary search of the anchors, then one
      bounded gallop per run from the preceding anchor's cursor offsets —
      the sum of the per-run lower bounds *is* the global position. *)
  let start env t ~lo ~hi ~mask ~valid =
    let nruns = Array.length t.runs in
    let j0 =
      match lo with
      | None -> 0
      | Some lo ->
          let cost = ref 0 in
          let a =
            Lsm_util.Search.lower_bound ~cmp:K.compare ~cost t.anchors ~lo:0
              ~hi:(Array.length t.anchors) lo
          in
          (* [a - 1] is the last anchor with key < [lo]; every position
             before it is also < [lo], so each run's gallop starts at that
             anchor's cursor offset with at most one stride of slack. *)
          let sum = ref 0 in
          for r = 0 to nruns - 1 do
            let base =
              if a = 0 then 0 else t.anchor_offs.(((a - 1) * nruns) + r)
            in
            sum :=
              !sum
              + Lsm_util.Search.exponential_lower_bound ~cmp:K.compare ~cost
                  t.runs.(r).keys ~lo:base
                  ~hi:(Array.length t.runs.(r).keys)
                  ~start:base lo
          done;
          Lsm_sim.Env.charge_comparisons env !cost;
          !sum
    in
    let vs = Lsm_sim.Env.view_stats env in
    vs.Lsm_sim.Env.view_scans <- vs.Lsm_sim.Env.view_scans + 1;
    {
      view = t;
      hi;
      mask;
      valid;
      j = j0;
      finished = j0 >= t.n;
      cur_leaf = Array.make (max 1 nruns) (-1);
      pref = Array.make (max 1 nruns) (-1);
      vpage = -1;
      vpref = -1;
      segments = 0;
      next_seg = j0 / t.stride * t.stride;
      skipped = 0;
      emitted = 0;
    }

  (* Touch position [j]: charge the view page it lives on (read-ahead
     window, like a data scan) and count anchor-segment crossings. *)
  let touch env it j =
    let t = it.view in
    let p = j / t.positions_per_page in
    if p <> it.vpage then begin
      if p <= it.vpref then Lsm_sim.Env.charge_page_hit env
      else begin
        let last =
          min (t.vpages - 1) (p + Lsm_sim.Env.read_ahead_pages env - 1)
        in
        Lsm_sim.Sfile.read_range env t.vfile ~first:p ~count:(last - p + 1);
        it.vpref <- last
      end;
      it.vpage <- p
    end;
    if j >= it.next_seg then begin
      it.segments <- it.segments + 1;
      it.next_seg <- (j / t.stride * t.stride) + t.stride
    end

  (* Fetch an emitted row's data leaf through the per-run read-ahead
     window and charge its entry visit — exactly what a sequential scan
     of that run charges when it enters the same leaf. *)
  let fetch_row env it r i =
    let run = it.view.runs.(r) in
    let l = run.leaf_of_row i in
    if l <> it.cur_leaf.(r) then begin
      if l <= it.pref.(r) then Lsm_sim.Env.charge_page_hit env
      else begin
        let last =
          min (run.leaf_pages - 1) (l + Lsm_sim.Env.read_ahead_pages env - 1)
        in
        Lsm_sim.Sfile.read_range env run.file ~first:l ~count:(last - l + 1);
        it.pref.(r) <- last
      end;
      it.cur_leaf.(r) <- l
    end;
    Lsm_sim.Env.charge_entry_visits env 1;
    run.rows.(i)

  (** [next env it] resolves the next key group: the winner is the first
      position of the group that is mask-included and live ([valid]);
      shadowed, masked and invalid positions are skipped without touching
      their data pages.  Returns [(key, run, row)], or [None] past [hi] or
      the end.  Groups whose members are all skipped produce nothing and
      the iterator moves on. *)
  let rec next env it =
    if it.finished then None
    else begin
      let t = it.view in
      let j = it.j in
      touch env it j;
      let k = t.runs.(t.sel.(j)).keys.(t.pos.(j)) in
      let beyond =
        match it.hi with
        | None -> false
        | Some h ->
            Lsm_sim.Env.charge_comparisons env 1;
            K.compare k h > 0
      in
      if beyond then begin
        it.finished <- true;
        None
      end
      else begin
        (* Walk the key group starting at [j]; group membership is the
           precomputed [eq_prev] bits, so no comparisons are charged. *)
        let winner_r = ref (-1) and winner_i = ref (-1) in
        let jj = ref j in
        let continue = ref true in
        while !continue do
          let r = t.sel.(!jj) and i = t.pos.(!jj) in
          if !jj > j then touch env it !jj;
          if
            !winner_r < 0
            && (match it.mask with None -> true | Some m -> m.(r))
            && it.valid r i
          then begin
            winner_r := r;
            winner_i := i
          end
          else it.skipped <- it.skipped + 1;
          incr jj;
          if !jj >= t.n || not (Lsm_util.Bitset.get t.eq_prev !jj) then
            continue := false
        done;
        it.j <- !jj;
        if !jj >= t.n then it.finished <- true;
        if !winner_r >= 0 then begin
          let row = fetch_row env it !winner_r !winner_i in
          it.emitted <- it.emitted + 1;
          Some (k, !winner_r, row)
        end
        else next env it
      end
    end
end
