(** Merge policies: when disk components accumulate, which contiguous run
    should be merged next?

    The paper's experiments use a tiering policy with size ratio 1.2 and a
    maximum mergeable component size (1GB) "to simulate the effect of disk
    components accumulating within each experiment period" (Sec. 6.1):
    a sequence of components is merged when the total size of the younger
    components exceeds [size_ratio] times the oldest component of the
    sequence; components larger than the cap are never merge inputs.

    A leveling policy is provided as well (Sec. 2.1 describes both
    families); it is exercised by ablation benches, not by the paper's main
    experiments. *)

type t =
  | Tiering of { size_ratio : float; max_mergeable_bytes : int }
  | Leveling of { size_ratio : float }
  | Lazy_leveling of { size_ratio : float; tier_ratio : float }
      (** Dostoevsky's lazy leveling (Dayan & Idreos, SIGMOD 2018, cited
          as [17]): one large leveled bottom run, tiering above it —
          merge-cheap like tiering for most data, lookup-cheap like
          leveling at the bottom. *)
  | No_merge

let tiering ?(size_ratio = 1.2) ?(max_mergeable_bytes = max_int) () =
  Tiering { size_ratio; max_mergeable_bytes }

let leveling ?(size_ratio = 10.0) () = Leveling { size_ratio }

let lazy_leveling ?(size_ratio = 10.0) ?(tier_ratio = 1.2) () =
  Lazy_leveling { size_ratio; tier_ratio }

(** [pick t ~sizes] inspects component sizes ordered oldest-to-newest and
    returns [Some (first, last)] — inclusive index range, still in
    oldest-to-newest order — when a merge is due. *)
let pick t ~sizes =
  let n = Array.length sizes in
  match t with
  | No_merge -> None
  | Tiering { size_ratio; max_mergeable_bytes } ->
      (* Skip any too-large prefix of old components, then find the oldest
         mergeable component whose younger siblings outweigh it. *)
      let first_mergeable = ref 0 in
      while !first_mergeable < n && sizes.(!first_mergeable) > max_mergeable_bytes do
        incr first_mergeable
      done;
      let result = ref None in
      let i = ref !first_mergeable in
      while !result = None && !i < n - 1 do
        let younger = ref 0 in
        for j = !i + 1 to n - 1 do
          younger := !younger + sizes.(j)
        done;
        if Float.of_int !younger >= size_ratio *. Float.of_int sizes.(!i) then
          result := Some (!i, n - 1)
        else incr i
      done;
      !result
  | Leveling { size_ratio } ->
      (* One component per level; when the newest component reaches
         1/size_ratio of the next-older one it is merged into it.  With the
         sizes array oldest-first, that means merging the last two whenever
         the newer is within ratio of the older. *)
      if n < 2 then None
      else
        let older = sizes.(n - 2) and newer = sizes.(n - 1) in
        if Float.of_int newer *. size_ratio >= Float.of_int older then
          Some (n - 2, n - 1)
        else None
  | Lazy_leveling { size_ratio; tier_ratio } ->
      if n < 2 then None
      else begin
        let bottom = sizes.(0) in
        let rest = ref 0 in
        for j = 1 to n - 1 do
          rest := !rest + sizes.(j)
        done;
        (* Enough has accumulated above the bottom run: fold it all in. *)
        if Float.of_int !rest *. size_ratio >= Float.of_int bottom then
          Some (0, n - 1)
        else begin
          (* Otherwise tier among the upper runs only. *)
          let result = ref None in
          let i = ref 1 in
          while !result = None && !i < n - 1 do
            let younger = ref 0 in
            for j = !i + 1 to n - 1 do
              younger := !younger + sizes.(j)
            done;
            if Float.of_int !younger >= tier_ratio *. Float.of_int sizes.(!i)
            then result := Some (!i, n - 1)
            else incr i
          done;
          !result
        end
      end

let pp fmt = function
  | Tiering { size_ratio; max_mergeable_bytes } ->
      Fmt.pf fmt "tiering(ratio=%.2f,max=%dB)" size_ratio max_mergeable_bytes
  | Leveling { size_ratio } -> Fmt.pf fmt "leveling(ratio=%.2f)" size_ratio
  | Lazy_leveling { size_ratio; tier_ratio } ->
      Fmt.pf fmt "lazy-leveling(bottom=%.2f,tier=%.2f)" size_ratio tier_ratio
  | No_merge -> Fmt.string fmt "no-merge"

(** [describe t] is {!pp} as a string — the form the inspection layer
    embeds in its reports and JSON documents. *)
let describe t = Fmt.str "%a" pp t
