(** A generic LSM-tree over the simulated storage substrate.

    One [Make (K) (V)] instance backs each index of a dataset: the primary
    index (key = primary key, value = record), the primary key index
    (key = primary key, value = unit), and secondary indexes (key =
    (secondary key, primary key), value = unit).  Entries are timestamped;
    component IDs are (minTS, maxTS) ranges over entry timestamps (Fig. 1).

    The tree knows nothing about maintenance strategies: it offers writes
    into the memory component, flush, merge of a contiguous component
    range, reconciling and per-component scans, and the point-lookup
    algorithms of Sec. 3.2.  Strategy logic lives in [Lsm_core]. *)

module Entry = Entry
module Config = Config
module Merge_policy = Merge_policy

(** Provenance of a disk component w.r.t. memory-shard flushes.  Lives
    outside the functor so origins of components from different [Make]
    instances (a dataset's primary / primary-key pair, whose flush
    histories are identical by construction) can be compared, and so
    recovery can compute per-shard durable frontiers.  A merged
    component carries the concatenation of its inputs' origins, newest
    first. *)
type flush_origin = {
  fo_shards : int;  (** the tree's shard count when the flush ran *)
  fo_shard : int;  (** flushed shard index; [-1] = whole-memory flush *)
  fo_min_ts : int;  (** component ID bounds of the flushed component *)
  fo_max_ts : int;
}

val flush_origin_equal : flush_origin -> flush_origin -> bool

module type KEY = Lsm_util.Intf.ORDERED
module type VALUE = Lsm_util.Intf.SIZED

module Make (K : KEY) (V : VALUE) : sig
  module Mbt : module type of Lsm_btree.Mem_btree.Make (K)
  module Dbt : module type of Lsm_btree.Disk_btree.Make (K)

  type row = { key : K.t; ts : int; value : V.t Entry.t }

  val row_size : row -> int

  type mem_component

  type disk_component = {
    tree : row Dbt.t;
    bloom : Lsm_bloom.Filter.t option;
    cmin_ts : int;  (** component ID lower bound *)
    cmax_ts : int;  (** component ID upper bound *)
    range_filter : (int * int) option;
    mutable bitmap : Lsm_util.Bitset.t option;  (** 1 = entry invalid *)
    mutable repaired_ts : int;
        (** entries are valid w.r.t. primary-key-index entries with
            ts <= repaired_ts (Sec. 4.4); 0 = never repaired *)
    mutable quarantined : bool;
        (** failed a checksum; lookups stop trusting the Bloom filter
            (degraded reads) until rebuilt or scrubbed *)
    seq : int;  (** unique id *)
    prov : flush_origin list;
        (** flush provenance, newest first; [[]] for components built by
            machinery that does not track it *)
  }

  type t

  val create : ?filter_of:(V.t -> int) -> Lsm_sim.Env.t -> Config.t -> t
  (** [filter_of] extracts the range-filter key from a value; absent = no
      component range filters. *)

  val set_tombstone_drop_ts : t -> int -> unit
  (** Bottom merges may drop an anti-matter entry only if its timestamp is
      at or below this barrier (default [max_int]).  Datasets whose
      secondary indexes validate against this tree lower it to the minimum
      secondary repairedTS so deletions stay observable until every
      obsolete entry has been repaired. *)

  val env : t -> Lsm_sim.Env.t
  val config : t -> Config.t
  val name : t -> string

  (** {1 Memory component} *)

  val mem_bytes : t -> int
  val mem_count : t -> int
  val mem_is_empty : t -> bool

  val mem_shards : t -> int
  (** Number of memory shards ([Config.shards]; 1 = classic single
      memtable). *)

  val shard_of : t -> K.t -> int
  (** The memory shard a key routes to (0 when unsharded). *)

  val mem_shard_bytes : t -> int -> int
  (** In-memory bytes of one shard. *)

  val mem_id : t -> int * int
  (** (minTS, maxTS) of the memory component (union over shards);
      [(max_int, -1)] if empty. *)

  val mem_filter : t -> (int * int) option
  (** Current memory range-filter bounds (union over shards), if any. *)

  val widen_filter : t -> K.t -> int -> unit
  (** [widen_filter t key fkey] widens the filter of the shard owning
      [key] to cover [fkey] — the Eager strategy calls this with *old*
      records' filter keys (Sec. 3.1). *)

  val write : t -> key:K.t -> ts:int -> V.t Entry.t -> unit
  (** Add an entry; a same-key write replaces the in-memory entry (newest
      wins within a component).  [Put] values widen the filter. *)

  val mem_rollback : t -> key:K.t -> prior:(int * V.t Entry.t) option -> unit
  (** Undo a memory write (transaction rollback): remove the current entry
      and restore the replaced binding, if any. *)

  val reset_memory : t -> unit
  (** Discard the memory component (crash simulation). *)

  val mem_find : t -> K.t -> row option

  (** {1 Components} *)

  val components : t -> disk_component array
  (** Newest first. *)

  val component_count : t -> int
  val component_id : disk_component -> int * int
  val component_rows : disk_component -> int
  val component_size_bytes : t -> disk_component -> int
  val disk_size_bytes : t -> int
  val total_rows : t -> int

  val component_file : disk_component -> int
  (** Id of the component's backing file (to match against
      {!Lsm_sim.Env.file_corrupt}). *)

  val quarantined : disk_component -> bool

  val quarantine : t -> disk_component -> unit
  (** Mark a component degraded: its Bloom filter is no longer consulted
      (every lookup falls through to the checksum-verified B+-tree probe)
      and the maintenance supervisor will rebuild or scrub it. *)

  val flush : ?shard:int -> t -> unit
  (** Turn a non-empty memory component into the newest disk component,
      inheriting the (possibly widened) memory range filter.  Without
      [?shard], every shard drains into one component (byte-identical to
      the unsharded tree) under the [lsm.flush.*] fault points; with
      [~shard:s], only shard [s] flushes — siblings keep absorbing
      writes — under [lsm.flush.shard.begin] / [lsm.flush.shard.install]. *)

  val merge :
    ?extra_invalid:(disk_component -> int -> bool) ->
    t ->
    first:int ->
    last:int ->
    disk_component
  (** Merge the contiguous range [first..last] (indices into
      {!components}, 0 = newest): reconciling k-way merge keeping the
      newest entry per key, dropping bitmap-invalidated entries and — on
      bottom merges, subject to the tombstone barrier — anti-matter.
      Inputs' files are deleted. *)

  val maybe_merge : t -> Merge_policy.t -> disk_component option
  (** Apply a merge policy to this tree's own components ("each LSM-tree
      is merged independently"). *)

  (** {1 Incremental merges (overlapping maintenance)}

      {!merge} broken into explicit steps so a scheduler can interleave
      several independent merges deterministically on one simulated
      clock.  Between {!merge_start} and {!merge_finish} the job only
      reads its inputs and accumulates rows in memory; the input
      components must survive untouched as a contiguous run, which
      {!merge_finish} verifies by physical identity — so per-shard
      flushes may *prepend* new components while the job is in flight.
      The output is byte-for-byte the output {!merge} would have
      produced — the tombstone barrier is captured at start. *)

  type merge_job

  val merge_start :
    ?extra_invalid:(disk_component -> int -> bool) ->
    t ->
    first:int ->
    last:int ->
    merge_job
  (** Open an incremental merge of [first..last]; announces
      [lsm.merge.begin]. *)

  val merge_step : t -> merge_job -> rows:int -> bool
  (** Advance by up to [rows] output decisions; [false] once the input
      streams are exhausted. *)

  val merge_finish : t -> merge_job -> disk_component
  (** Build and install the merged component, deleting the inputs' files;
      announces [lsm.merge.install]. *)

  val build_component :
    ?prov:flush_origin list ->
    t ->
    row array ->
    cmin_ts:int ->
    cmax_ts:int ->
    range_filter:(int * int) option ->
    repaired_ts:int ->
    disk_component
  (** Construct a component from pre-merged, key-sorted rows without
      installing it (the incremental concurrent-merge machinery).
      [?prov] (default [[]]) stamps flush provenance through. *)

  val replace_range : t -> first:int -> last:int -> disk_component -> unit
  (** Atomically replace a component range with a new component. *)

  val remove_component : t -> at:int -> unit
  (** Remove the component at newest-first index [at], deleting its file.
      Recovery-only: rolls a tree back to a crash-consistent cut when a
      correlated index's flush did not survive a crash (the discarded
      entries are still in the WAL and are redone into memory). *)

  (** {1 Bitmaps and repair bookkeeping} *)

  val row_valid : disk_component -> int -> bool
  val component_row_valid : disk_component -> int -> bool
  val ensure_bitmap : disk_component -> Lsm_util.Bitset.t
  val invalidate : disk_component -> int -> unit
  val revalidate : disk_component -> int -> unit
  (** Flip a bit back (transaction aborts only, Sec. 5.2). *)

  val set_repaired_ts : disk_component -> int -> unit
  val find_position : t -> disk_component -> K.t -> int option

  val rows_of : disk_component -> row array
  val charge_component_scan : t -> disk_component -> unit
  (** Charge the I/O and CPU of a full sequential scan of a component
      without materializing anything (standalone repair). *)

  val probe_bloom : t -> disk_component -> K.t -> bool
  (** Probe a component's Bloom filter with full cost accounting. *)

  val note_bloom_fp : t -> disk_component -> unit
  (** Report a Bloom false positive: a positive {!probe_bloom} answer
      whose component search then missed.  Bumps [Io_stats.bloom_fps]
      (no-op for filterless components). *)

  (** {1 Point lookups (Sec. 3.2)} *)

  type lookup_opts = {
    batched : bool;  (** batched point-lookup algorithm *)
    batch_bytes : int;  (** batching memory (paper default: 16MB) *)
    stateful : bool;  (** stateful B+-tree cursors ("sLookup") *)
    use_hints : bool;  (** component-ID propagation ("pID") *)
  }

  val default_lookup_opts : lookup_opts

  type query_key = { qkey : K.t; hint_ts : int }
  (** [hint_ts] is the timestamp of the secondary-index entry that
      produced the key (0 = no hint); with [use_hints], components whose
      maxTS is below it are skipped before their Bloom filter is probed. *)

  val plain_keys : K.t array -> query_key array

  val lookup_one : t -> K.t -> row option
  (** Newest entry across memory and disk ([None] if never written or the
      newest disk entry is bitmap-invalidated). *)

  val disk_find : t -> K.t -> (disk_component * int * row) option
  (** Newest *disk* entry (component, position, row), ignoring memory and
      bitmaps — the Mutable-bitmap strategy's bit-location search. *)

  val lookup_batch :
    t -> lookup_opts -> query_key array -> emit:(K.t -> row option -> unit) -> unit
  (** Resolve many point lookups; [qkeys] sorted ascending.  [emit] fires
      exactly once per key, in fetch order (which for the batched
      algorithm is not global key order — the Fig. 12d trade-off). *)

  (** {1 Scans} *)

  type scan_spec = {
    lo : K.t option;  (** inclusive *)
    hi : K.t option;  (** inclusive *)
    reconcile : bool;
        (** newest-wins across components; [false] scans components
            independently (Mutable-bitmap strategy, Sec. 6.4.2) *)
    respect_bitmap : bool;
    include_mem : bool;
    emit_del : bool;
        (** also emit anti-matter entries that win reconciliation *)
    only : disk_component list option;
        (** restrict to these components (newest-first); [None] = all —
            used for range-filter pruning *)
  }

  val full_scan_spec : scan_spec

  val scan : t -> scan_spec -> f:(row -> src_repaired:int -> unit) -> unit
  (** Stream entries; [src_repaired] is the source component's repairedTS
      (0 for memory).  Reconciled output is in ascending key order.

      Reconciling scans over >= 2 disk components are served from a
      REMIX-style persistent sorted view ({!Sorted_view}): built lazily by
      the first unrestricted reconciling scan, reused (through a run mask)
      by [only]-restricted scans while fresh, and invalidated atomically
      whenever the component list changes, so crash recovery simply
      rebuilds on the next scan.  Output is byte-identical to the k-way
      heap merge, which remains the fallback (and can be forced with
      {!set_sorted_views}). *)

  (** {1 Sorted views (REMIX)} *)

  val set_sorted_views : t -> bool -> unit
  (** Enable (default) or disable sorted-view-backed reconciling scans;
      disabling drops any materialized view. *)

  val sorted_views_enabled : t -> bool

  val view_info : t -> (int * int * int) option
  (** [(positions, anchors, runs)] of the materialized view, if any. *)
end
