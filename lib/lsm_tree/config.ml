(** Per-LSM-tree configuration. *)

type bloom = {
  kind : [ `Standard | `Blocked ];
      (** the "bBF" toggle of Sec. 3.2: blocked filters cost one CPU cache
          line per probe instead of [k] *)
  fpr : float;  (** target false-positive rate (paper: 1%) *)
}

type t = {
  name : string;  (** for logs and debugging *)
  bloom : bloom option;
      (** Bloom filter on the keys of each disk component.  The paper
          builds them on primary and primary-key components; secondary
          indexes have none by default (their searches are range scans). *)
  validity_bitmap : bool;
      (** allocate a mutable validity bitmap per disk component
          (Mutable-bitmap strategy, Sec. 5; also written by merge repair,
          Sec. 4.4) *)
  shards : int;
      (** memory-component shards: writes hash-route to one of [shards]
          sub-memtables, and a full shard can flush while its siblings
          keep absorbing writes (Sec. 2.3's fine-grained flush
          granularity).  1 = the classic single memory component. *)
}

let default_bloom = { kind = `Standard; fpr = 0.01 }

let make ?(bloom = None) ?(validity_bitmap = false) ?(shards = 1) name =
  { name; bloom; validity_bitmap; shards = max 1 shards }
