(** The crash-consistency checker: after a scenario completes — or
    crashes and recovers — every invariant the paper's recovery protocol
    promises (Sec. 5.2) must hold against the committed-state model.

    - durability: every committed write is visible; every uncommitted or
      aborted write is invisible (point queries over every key ever
      mentioned, scan and range counts);
    - index agreement: secondary queries in every supported validation
      mode return exactly the model's answer;
    - pair alignment (Mutable-bitmap): the primary index and the primary
      key index hold the same components with the same rows, and share
      the same validity-bitmap objects bit for bit;
    - eventual healing: after an explicit heal sweep, no component
      remains quarantined, no corrupt page survives on a live file, and
      the dataset still agrees with the model (degraded-state
      correctness is verified by the query checks that run first);
    - repair sanity: repairedTS never regresses across a standalone
      repair pass;
    - accounting sanity: I/O and resilience counters non-negative,
      write amplification finite.

    Checks return a list of human-readable failure strings; empty means
    the state is accepted. *)

module S = Scenario
module D = Scenario.D
module M = Scenario.M
module Tweet = Lsm_workload.Tweet
module Strategy = Lsm_core.Strategy
module Bitset = Lsm_util.Bitset

let failf acc fmt = Printf.ksprintf (fun s -> acc := s :: !acc) fmt

let pks rs = List.sort compare (List.map Tweet.primary_key rs)

(* ------------------------------------------------------------------ *)
(* Durability: point lookups, scans, range counts *)

let check_points acc (st : S.t) =
  List.iter
    (fun pk ->
      let got = D.point_query st.S.d pk in
      let want = M.point st.S.model pk in
      if got <> want then
        let show = function
          | None -> "absent"
          | Some r ->
              Printf.sprintf "{user=%d at=%d len=%d}" r.Tweet.user_id
                r.Tweet.created_at r.Tweet.msg_len
        in
        failf acc "point %d: dataset %s, model %s" pk (show got) (show want))
    (M.touched st.S.model)

let check_counts acc (st : S.t) =
  let want = M.count st.S.model in
  let scanned = D.full_scan st.S.d ~f:(fun _ -> ()) in
  if scanned <> want then
    failf acc "full_scan: %d rows, model %d" scanned want;
  let thi = max 1 st.S.at in
  let timed = D.query_time_range st.S.d ~tlo:0 ~thi ~f:(fun _ -> ()) in
  if timed <> want then
    failf acc "time_range [0,%d]: %d rows, model %d" thi timed want;
  (* A strict sub-range exercises component pruning. *)
  let tlo = thi / 4 and tmid = thi / 2 in
  let sub = D.query_time_range st.S.d ~tlo ~thi:tmid ~f:(fun _ -> ()) in
  let want_sub = M.count_by st.S.model Tweet.created_at ~lo:tlo ~hi:tmid in
  if sub <> want_sub then
    failf acc "time_range [%d,%d]: %d rows, model %d" tlo tmid sub want_sub

(* ------------------------------------------------------------------ *)
(* Secondary-index agreement *)

let check_secondary acc (st : S.t) =
  let lo = 0 and hi = st.S.cfg.S.user_domain - 1 in
  let want =
    pks (M.range_by st.S.model Tweet.user_id ~lo ~hi)
  in
  List.iter
    (fun mode ->
      let got = pks (D.query_secondary st.S.d ~sec:"user_id" ~lo ~hi ~mode ()) in
      if got <> want then
        failf acc "secondary [%d,%d] mode %s: %d pks, model %d"
          lo hi
          (match mode with
          | `Direct -> "direct"
          | `Timestamp -> "timestamp"
          | `Assume_valid -> "assume_valid")
          (List.length got) (List.length want))
    [ `Direct; `Timestamp ];
  let got_keys =
    List.sort compare
      (D.query_secondary_keys st.S.d ~sec:"user_id" ~lo ~hi ~mode:`Timestamp ())
  in
  let want_keys = M.keys_by st.S.model Tweet.user_id ~lo ~hi in
  if got_keys <> want_keys then
    failf acc "secondary keys [%d,%d]: %d pairs, model %d" lo hi
      (List.length got_keys) (List.length want_keys)

(* ------------------------------------------------------------------ *)
(* Primary-pair alignment (Mutable-bitmap) *)

let bitset_equal a b =
  Bitset.length a = Bitset.length b
  &&
  let ok = ref true in
  for i = 0 to Bitset.length a - 1 do
    if Bitset.get a i <> Bitset.get b i then ok := false
  done;
  !ok

let check_pair_alignment acc (st : S.t) =
  if Strategy.uses_primary_bitmap (D.strategy st.S.d) then
    match D.pk_index st.S.d with
    | None -> failf acc "mutable-bitmap dataset has no primary key index"
    | Some pkt ->
        let pcs = D.Prim.components (D.primary st.S.d) in
        let kcs = D.Pk.components pkt in
        if Array.length pcs <> Array.length kcs then
          failf acc "pair misaligned: %d primary vs %d pk components"
            (Array.length pcs) (Array.length kcs)
        else
          Array.iteri
            (fun i pc ->
              let kc = kcs.(i) in
              let pid = D.Prim.component_id pc
              and kid = D.Pk.component_id kc in
              if pid <> kid then
                failf acc "pair comp %d: primary id (%d,%d) vs pk (%d,%d)" i
                  (fst pid) (snd pid) (fst kid) (snd kid);
              let prows = Array.length (D.Prim.rows_of pc)
              and krows = Array.length (D.Pk.rows_of kc) in
              if prows <> krows then
                failf acc "pair comp %d: %d primary rows vs %d pk rows" i
                  prows krows;
              match (pc.D.Prim.bitmap, kc.D.Pk.bitmap) with
              | None, None -> ()
              | Some pb, Some kb ->
                  if pb != kb then
                    failf acc "pair comp %d: bitmaps are distinct objects" i;
                  if not (bitset_equal pb kb) then
                    failf acc "pair comp %d: bitmap contents differ" i
              | Some _, None | None, Some _ ->
                  failf acc "pair comp %d: bitmap present on one side only" i)
            pcs

(* ------------------------------------------------------------------ *)
(* RepairedTS monotonicity *)

let sec_repaired_ts (st : S.t) =
  Array.to_list (D.secondaries st.S.d)
  |> List.concat_map (fun (s : D.sec_index) ->
         Array.to_list (D.Sec.components s.D.tree)
         |> List.map (fun c -> (s.D.sec_name, c.D.Sec.seq, c.D.Sec.repaired_ts)))

let check_repair_monotone acc (st : S.t) =
  let before = sec_repaired_ts st in
  List.iter
    (fun (n, seq, ts) ->
      if ts < 0 then failf acc "%s comp %d: repairedTS %d < 0" n seq ts)
    before;
  D.standalone_repair st.S.d;
  let after = sec_repaired_ts st in
  List.iter
    (fun (n, seq, ts) ->
      match List.find_opt (fun (n', s', _) -> n' = n && s' = seq) after with
      | Some (_, _, ts') when ts' < ts ->
          failf acc "%s comp %d: repairedTS regressed %d -> %d" n seq ts ts'
      | _ -> ())
    before

(* ------------------------------------------------------------------ *)
(* Eventual healing: post-fault state must be not only correct but
   fully healable — after the supervisor settles (an explicit heal
   sweep), no component may remain quarantined, no corrupt page may
   survive on a live file, and the dataset must still agree with the
   model.  Runs AFTER the query checks above, which verified that
   *degraded* reads were already correct. *)

let check_healed acc (st : S.t) =
  let had_work =
    Lsm_sim.Env.corrupt_page_count st.S.env > 0
    || D.quarantined_count st.S.d > 0
  in
  D.heal st.S.d;
  let q = D.quarantined_count st.S.d in
  if q <> 0 then failf acc "heal left %d components quarantined" q;
  let c = Lsm_sim.Env.corrupt_page_count st.S.env in
  if c <> 0 then failf acc "heal left %d corrupt pages on live files" c;
  if had_work then begin
    (* The rebuild/scrub physically rewrote components: recount. *)
    let want = M.count st.S.model in
    let scanned = D.full_scan st.S.d ~f:(fun _ -> ()) in
    if scanned <> want then
      failf acc "post-heal full_scan: %d rows, model %d" scanned want
  end

(* ------------------------------------------------------------------ *)
(* Accounting sanity *)

let check_accounting acc (st : S.t) =
  let amp = Lsm_sim.Env.amp st.S.env in
  let wa = Lsm_obs.Ampstats.write_amplification amp in
  (* Before the first flush the ratio is nan by definition; once any
     bytes were flushed it must be a finite factor >= 1. *)
  if
    amp.Lsm_obs.Ampstats.flush_bytes > 0
    && (Float.is_nan wa || wa = Float.infinity || wa < 1.0)
  then failf acc "write amplification not finite/sane: %f" wa;
  List.iter
    (fun (name, v) ->
      if v < 0 then failf acc "amp counter %s negative: %d" name v)
    (Lsm_obs.Ampstats.fields amp);
  List.iter
    (fun (name, v) ->
      if v < 0 then failf acc "io counter %s negative: %d" name v)
    (Lsm_sim.Io_stats.fields (Lsm_sim.Env.stats st.S.env));
  let r = Lsm_sim.Env.resil st.S.env in
  List.iter
    (fun (name, v) ->
      if v < 0 then failf acc "resilience counter %s negative: %d" name v)
    [
      ("retries", r.Lsm_sim.Env.retries);
      ("exhausted", r.Lsm_sim.Env.exhausted);
      ("checksum_failures", r.Lsm_sim.Env.checksum_failures);
      ("degraded_probes", r.Lsm_sim.Env.degraded_probes);
      ("quarantines", r.Lsm_sim.Env.quarantines);
      ("rebuilds", r.Lsm_sim.Env.rebuilds);
      ("reschedules", r.Lsm_sim.Env.reschedules);
    ]

(* ------------------------------------------------------------------ *)

(** [check st] runs every invariant; returns failure strings (empty =
    accepted).  Queries re-enter the engine, so callers must have cleared
    any armed fault hook first ({!Scenario.run} does). *)
let check (st : S.t) =
  let acc = ref [] in
  check_points acc st;
  check_counts acc st;
  check_secondary acc st;
  check_healed acc st;
  check_pair_alignment acc st;
  check_repair_monotone acc st;
  check_accounting acc st;
  List.rev !acc
