(** Deterministic fault plans over {!Lsm_sim.Env} fault points.

    The engine announces every crash-relevant transition through
    [Env.fault_point] (page I/O, flush/merge begin and install, WAL
    append/commit boundaries, checkpoint phases).  An {!injector} counts
    those announcements; a {!plan} names a window of them — [fails]
    consecutive occurrences of [point] starting at the [hit]-th — and
    raises {!Lsm_sim.Env.Injected_fault} there: as a {e crash}
    (execution stops; the harness runs recovery), a {e transient I/O
    error} (the engine's retry/backoff absorbs it, or surfaces
    [Resilience.Unrecoverable] when the window outlasts the budget), or
    {e corruption} (the engine flips the page's simulated checksum and
    carries on; detection happens at read time).

    Because workloads are seeded and the simulated environment has no
    hidden nondeterminism, a counting run and an armed run observe the
    identical announcement sequence: every failure reproduces from
    (seed, point, hit, fails) alone. *)

type kind = Lsm_sim.Env.fault_kind = Crash | Io_error | Corrupt

type plan = { kind : kind; point : string; hit : int; fails : int }
(** Fail at announcements [hit .. hit + fails - 1] (1-based) of
    [point].  [fails = 1] is the classic one-shot fault; [fails > 1]
    models an intermittent fault that persists across retries. *)

let plan ?(fails = 1) kind ~point ~hit = { kind; point; hit; fails }

let kind_to_string = Lsm_sim.Env.string_of_fault_kind

let kind_of_string = function
  | "crash" -> Crash
  | "io" | "io-error" -> Io_error (* both spellings; "io" is canonical *)
  | "corrupt" -> Corrupt
  | s -> invalid_arg ("Fault.kind_of_string: " ^ s ^ " (crash|io|io-error|corrupt)")

let describe p =
  Printf.sprintf "%s at %s hit %d%s" (kind_to_string p.kind) p.point p.hit
    (if p.fails > 1 then Printf.sprintf " x%d" p.fails else "")

type injector = {
  counts : (string, int) Hashtbl.t;
  plan : plan option;  (** [None] = counting only *)
  mutable armed : bool;
  mutable fired : bool;
}

let injector plan =
  { counts = Hashtbl.create 32; plan; armed = true; fired = false }

let fired i = i.fired

(** [hits i] is the per-point announcement totals, sorted by point name. *)
let hits i =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) i.counts [])

let total i = Hashtbl.fold (fun _ v acc -> acc + v) i.counts 0

let hook i point =
  let n = 1 + try Hashtbl.find i.counts point with Not_found -> 0 in
  Hashtbl.replace i.counts point n;
  match i.plan with
  | Some p
    when i.armed && n >= p.hit
         && n < p.hit + p.fails
         && String.equal p.point point ->
      (* Disarm after the last firing of the window: recovery and
         post-crash checking re-enter the engine, and a plan must fire a
         bounded number of times. *)
      if n = p.hit + p.fails - 1 then i.armed <- false;
      i.fired <- true;
      raise (Lsm_sim.Env.Injected_fault { kind = p.kind; point; hit = n })
  | _ -> ()

(** [arm i env] installs the injector as [env]'s fault hook. *)
let arm i env = Lsm_sim.Env.set_fault_hook env (hook i)
