(** Deterministic fault plans over {!Lsm_sim.Env} fault points.

    The engine announces every crash-relevant transition through
    [Env.fault_point] (page I/O, flush/merge begin and install, WAL
    append/commit boundaries, checkpoint phases).  An {!injector} counts
    those announcements; a {!plan} names one of them — the [hit]-th
    occurrence of [point] — and raises {!Lsm_sim.Env.Injected_fault}
    there, either as a {e crash} (execution stops; the harness runs
    recovery) or as a {e transient I/O error} (the injector disarms, so a
    retry of the same operation succeeds).

    Because workloads are seeded and the simulated environment has no
    hidden nondeterminism, a counting run and an armed run observe the
    identical announcement sequence: every failure reproduces from
    (seed, point, hit) alone. *)

type kind = Lsm_sim.Env.fault_kind = Crash | Io_error

type plan = { kind : kind; point : string; hit : int }
(** Fail at the [hit]-th (1-based) announcement of [point]. *)

let kind_to_string = function Crash -> "crash" | Io_error -> "io"

let kind_of_string = function
  | "crash" -> Crash
  | "io" -> Io_error
  | s -> invalid_arg ("Fault.kind_of_string: " ^ s ^ " (crash|io)")

let describe p =
  Printf.sprintf "%s at %s hit %d" (kind_to_string p.kind) p.point p.hit

type injector = {
  counts : (string, int) Hashtbl.t;
  plan : plan option;  (** [None] = counting only *)
  mutable armed : bool;
  mutable fired : bool;
}

let injector plan =
  { counts = Hashtbl.create 32; plan; armed = true; fired = false }

let fired i = i.fired

(** [hits i] is the per-point announcement totals, sorted by point name. *)
let hits i =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) i.counts [])

let total i = Hashtbl.fold (fun _ v acc -> acc + v) i.counts 0

let hook i point =
  let n = 1 + try Hashtbl.find i.counts point with Not_found -> 0 in
  Hashtbl.replace i.counts point n;
  match i.plan with
  | Some p when i.armed && p.hit = n && String.equal p.point point ->
      (* Disarm first: recovery and post-crash checking re-enter the
         engine, and a (point, hit) pair must fire at most once. *)
      i.armed <- false;
      i.fired <- true;
      raise (Lsm_sim.Env.Injected_fault { kind = p.kind; point; hit = n })
  | _ -> ()

(** [arm i env] installs the injector as [env]'s fault hook. *)
let arm i env = Lsm_sim.Env.set_fault_hook env (hook i)
