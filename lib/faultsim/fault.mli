(** Deterministic fault plans over {!Lsm_sim.Env} fault points: an
    injector counts every announced failure site; a plan names [fails]
    consecutive occurrences of one site starting at the [hit]-th and
    raises {!Lsm_sim.Env.Injected_fault} there.  Seeded workloads make
    the announcement sequence reproducible, so every failure replays
    from (seed, point, hit, fails) alone. *)

type kind = Lsm_sim.Env.fault_kind = Crash | Io_error | Corrupt

type plan = { kind : kind; point : string; hit : int; fails : int }
(** Fail at announcements [hit .. hit + fails - 1] (1-based) of
    [point].  [Crash] aborts execution (the harness then runs recovery);
    [Io_error] is transient — the engine retries under its backoff
    policy, surfacing [Resilience.Unrecoverable] only when [fails]
    outlasts the budget; [Corrupt] silently flips the page's simulated
    checksum instead of raising. *)

val plan : ?fails:int -> kind -> point:string -> hit:int -> plan
(** [fails] defaults to 1 (a one-shot fault). *)

val kind_to_string : kind -> string
(** Canonical spellings ["crash"], ["io"], ["corrupt"]. *)

val kind_of_string : string -> kind
(** Accepts the canonical spellings plus the legacy ["io-error"].
    @raise Invalid_argument otherwise. *)

val describe : plan -> string

type injector

val injector : plan option -> injector
(** [None] = counting only (the enumeration run). *)

val arm : injector -> Lsm_sim.Env.t -> unit
(** Install as the environment's fault hook. *)

val fired : injector -> bool
(** Did the plan's fault actually trigger? *)

val hits : injector -> (string * int) list
(** Per-point announcement totals, sorted by point name. *)

val total : injector -> int
