(** Deterministic fault plans over {!Lsm_sim.Env} fault points: an
    injector counts every announced failure site; a plan names the
    [hit]-th occurrence of one site and raises
    {!Lsm_sim.Env.Injected_fault} there.  Seeded workloads make the
    announcement sequence reproducible, so every failure replays from
    (seed, point, hit) alone. *)

type kind = Lsm_sim.Env.fault_kind = Crash | Io_error

type plan = { kind : kind; point : string; hit : int }
(** Fail at the [hit]-th (1-based) announcement of [point].  [Crash]
    aborts execution (the harness then runs recovery); [Io_error] is
    transient — the injector disarms, so a retry succeeds. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind
(** ["crash"] or ["io"]. @raise Invalid_argument otherwise. *)

val describe : plan -> string

type injector

val injector : plan option -> injector
(** [None] = counting only (the enumeration run). *)

val arm : injector -> Lsm_sim.Env.t -> unit
(** Install as the environment's fault hook. *)

val fired : injector -> bool
(** Did the plan's fault actually trigger? *)

val hits : injector -> (string * int) list
(** Per-point announcement totals, sorted by point name. *)

val total : injector -> int
