(** A seeded transactional workload over a real dataset, driven twice:
    once to count fault-point announcements, then once per plan with a
    fault armed.  The drive phase is bit-identical between runs — every
    random choice comes from one {!Lsm_util.Rng} stream and no decision
    depends on hash-table iteration order — so a (seed, point, hit)
    triple names the same machine state every time.

    The scenario keeps a {!Model} of committed state alongside the real
    dataset.  A transaction's operations reach the model only at commit;
    when a crash interrupts an in-flight transaction, the durable WAL is
    the authority: if its commit record survived, the model applies the
    pending operations, otherwise it discards them.  After recovery the
    checker compares dataset and model. *)

module Tweet = Lsm_workload.Tweet
module Rng = Lsm_util.Rng
module Env = Lsm_sim.Env
module Strategy = Lsm_core.Strategy
module Wal = Lsm_txn.Wal
module D = Lsm_core.Dataset.Make (Tweet.Record)
module T = Lsm_core.Txn_dataset.Make (Tweet.Record) (D)

module M = Model.Make (struct
  type t = Tweet.t

  let pk = Tweet.primary_key
end)

type config = {
  seed : int;
  txns : int;  (** committed-or-aborted transactions to attempt *)
  ops_per_txn : int;  (** max operations per transaction *)
  key_domain : int;  (** primary keys drawn from [1, key_domain] *)
  user_domain : int;  (** user_ids drawn from [0, user_domain) *)
  delete_pct : int;  (** % of operations that are blind deletes *)
  abort_pct : int;  (** % of transactions rolled back *)
  flush_every : int;  (** flush (and merge) after every n txns; 0 = never *)
  ckpt_every : int;  (** checkpoint after every n txns; 0 = never *)
  query_every : int;  (** run queries after every n txns; 0 = never *)
  validation : bool;  (** Validation strategy instead of Mutable-bitmap *)
  group_commit : int;
      (** WAL group-commit batch; <= 1 = serial (one fsync per commit) *)
  maint_workers : int;
      (** modeled maintenance workers; > 1 overlaps independent merges *)
  mem_shards : int;
      (** memory shards per tree; > 1 flushes one shard at a time during
          the drive phase, exercising the per-shard flush crash points *)
}

let default_config =
  {
    seed = 1;
    txns = 40;
    ops_per_txn = 8;
    key_domain = 120;
    user_domain = 40;
    delete_pct = 25;
    abort_pct = 15;
    flush_every = 5;
    ckpt_every = 11;
    query_every = 7;
    validation = false;
    group_commit = 1;
    maint_workers = 1;
    mem_shards = 1;
  }

type outcome = Completed | Crashed of { point : string; hit : int }

type pending = Op_up of Tweet.t | Op_del of int

type t = {
  cfg : config;
  env : Env.t;
  d : D.t;
  t : T.t;
  model : M.t;
  rng : Rng.t;
  mutable at : int;  (** monotone created_at counter *)
  mutable inflight : (int * pending list ref) option;
      (** WAL txn id + its not-yet-committed operations, newest first *)
  unsettled : (int * pending list) Queue.t;
      (** committed transactions (oldest first) whose commit records are
          not yet durable — under group commit, a commit returns with the
          record still in the open group; the model must not see its
          operations until the group's fsync makes it durable *)
  mutable outcome : outcome;
}

let create cfg =
  (* Tiny pages and a tiny cache: queries miss, flushes and merges write
     many pages — a dense announcement sequence for the enumerator. *)
  let device =
    Lsm_sim.Device.custom ~name:"faultsim" ~page_size:1024 ~seek_us:50.0
      ~read_us_per_page:10.0 ~write_us_per_page:10.0
  in
  let env = Env.create ~cache_bytes:(16 * 1024) device in
  let strategy =
    if cfg.validation then Strategy.validation else Strategy.mutable_bitmap
  in
  let d =
    D.create ~filter_key:Tweet.created_at
      ~secondaries:[ Lsm_core.Record.secondary "user_id" Tweet.user_id ]
      env
      {
        D.default_config with
        strategy;
        mem_budget = 8 * 1024;
        mem_shards = max 1 cfg.mem_shards;
      }
  in
  if cfg.maint_workers > 1 then D.set_maint_workers d cfg.maint_workers;
  let t = T.create d in
  if cfg.group_commit > 1 then T.set_group_commit t ~batch:cfg.group_commit;
  {
    cfg;
    env;
    d;
    t;
    model = M.create ();
    rng = Rng.create cfg.seed;
    at = 0;
    inflight = None;
    unsettled = Queue.create ();
    outcome = Completed;
  }

let fresh_tweet st ~pk =
  st.at <- st.at + 1;
  {
    Tweet.id = pk;
    user_id = Rng.int st.rng st.cfg.user_domain;
    location = Rng.int st.rng Tweet.location_domain;
    created_at = st.at;
    msg_len = 80 + Rng.int st.rng 60;
  }

(* ------------------------------------------------------------------ *)
(* Settlement *)

let apply_pending st ops =
  List.iter
    (function
      | Op_up r -> M.upsert st.model r
      | Op_del pk -> M.delete st.model pk)
    ops

(** Move the current transaction's operations onto the settlement queue
    (called once its commit returned). *)
let enqueue_inflight st =
  (match st.inflight with
  | None -> ()
  | Some (txn_id, pending) ->
      Queue.push (txn_id, List.rev !pending) st.unsettled);
  st.inflight <- None

(** Apply every settled transaction whose commit record is durable.
    Groups seal in FIFO commit order, so durable transactions always form
    a prefix of the queue: a peek test suffices. *)
let drain_settled st =
  let wal = T.wal st.t in
  let rec go () =
    match Queue.peek_opt st.unsettled with
    | Some (txn_id, ops) when Wal.txn_durable wal ~txn:txn_id ->
        ignore (Queue.pop st.unsettled);
        apply_pending st ops;
        go ()
    | _ -> ()
  in
  go ()

(** Settle everything outstanding against the durable WAL at a crash:
    each committed-but-unsettled transaction (and the interrupted one, if
    any) either has a durable commit record — the model applies its
    operations, recovery will redo them — or it does not (still Active,
    aborted, or stranded in a torn group): the model discards them, and
    recovery must not resurrect them. *)
let settle_crash st =
  enqueue_inflight st;
  let wal = T.wal st.t in
  while not (Queue.is_empty st.unsettled) do
    let txn_id, ops = Queue.pop st.unsettled in
    if Wal.txn_durable wal ~txn:txn_id then apply_pending st ops
  done

(* ------------------------------------------------------------------ *)
(* Queries (transient-I/O-error tolerant) *)

(** Run a side-effect-free query, retrying on transient injected I/O
    failures.  The engine already absorbs up to its retry budget of
    consecutive faults per I/O site (with backoff on the simulated
    clock); what reaches here is either a legacy [Io_error] raised at a
    non-I/O point or an [Unrecoverable] from an intermittent window that
    outlasted one site's budget.  Both are retried under the same engine
    policy — bounded, so a fault the engine can never clear still fails
    the run.  Crashes propagate to the driver. *)
let attempt st f =
  let budget =
    (Env.retry_policy st.env).Lsm_sim.Resilience.max_retries
  in
  let rec go n =
    try ignore (f ())
    with
    | Env.Injected_fault { kind = Env.Io_error; _ }
    | Lsm_sim.Resilience.Unrecoverable _
    when n < budget
    ->
      go (n + 1)
  in
  go 0

let run_queries st =
  (* Draw every random parameter before calling [attempt]: a retry must
     not consume additional randomness. *)
  let pk = 1 + Rng.int st.rng st.cfg.key_domain in
  let ulo = Rng.int st.rng st.cfg.user_domain in
  let uhi = min (st.cfg.user_domain - 1) (ulo + 1 + Rng.int st.rng 5) in
  let tlo = Rng.int st.rng (max 1 st.at) in
  let thi = min st.at (tlo + 1 + Rng.int st.rng (max 1 (st.at / 2))) in
  attempt st (fun () -> D.point_query st.d pk);
  let mode = if st.cfg.validation then `Direct else `Timestamp in
  attempt st (fun () ->
      D.query_secondary st.d ~sec:"user_id" ~lo:ulo ~hi:uhi ~mode ());
  attempt st (fun () -> D.query_time_range st.d ~tlo ~thi ~f:(fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* The drive phase *)

let drive st =
  let cfg = st.cfg in
  for i = 1 to cfg.txns do
    if cfg.flush_every > 0 && i mod cfg.flush_every = 0 then begin
      (* The flush forces a WAL sync, sealing any open commit group.
         Sharded scenarios rotate one shard per period — deterministic in
         the txn counter, so every shard's crash points get announced —
         while the final drain below still flushes whole. *)
      if cfg.mem_shards > 1 then
        T.flush_shard st.t ((i / cfg.flush_every) mod cfg.mem_shards)
      else T.flush st.t;
      drain_settled st
    end;
    if cfg.ckpt_every > 0 && i mod cfg.ckpt_every = 0 then T.checkpoint st.t;
    if cfg.query_every > 0 && i mod cfg.query_every = 0 then run_queries st;
    let txn = T.begin_txn st.t in
    let pending = ref [] in
    st.inflight <- Some (T.txn_id txn, pending);
    let nops = 1 + Rng.int st.rng cfg.ops_per_txn in
    for _ = 1 to nops do
      if Rng.int st.rng 100 < cfg.delete_pct then begin
        (* Blind delete of a random key in the domain: no lookup, so the
           decision never depends on current (crash-varying) contents. *)
        let pk = 1 + Rng.int st.rng cfg.key_domain in
        T.delete st.t txn ~pk;
        pending := Op_del pk :: !pending
      end
      else begin
        let pk = 1 + Rng.int st.rng cfg.key_domain in
        let r = fresh_tweet st ~pk in
        T.upsert st.t txn r;
        pending := Op_up r :: !pending
      end
    done;
    if Rng.int st.rng 100 < cfg.abort_pct then begin
      T.abort st.t txn;
      st.inflight <- None
    end
    else begin
      T.commit st.t txn;
      (* Serial: the commit record is durable immediately.  Group
         commit: it may still sit in the open group — the model accepts
         the writes only once the group's fsync lands. *)
      enqueue_inflight st;
      drain_settled st
    end
  done;
  T.flush st.t;
  drain_settled st

(* ------------------------------------------------------------------ *)
(* Running a scenario *)

(** [run ?plan cfg] builds a scenario, arms [plan] (or a pure counter),
    and drives the workload.  An injected crash — or an injected I/O
    error escaping a write or maintenance path, which real engines treat
    as fail-stop too — settles the in-flight transaction against the
    durable WAL, simulates the crash, and runs recovery.  The fault hook
    is cleared before returning, so post-run checking and the counting
    run's totals cover exactly the drive phase. *)
let run ?plan cfg =
  let st = create cfg in
  let inj = Fault.injector plan in
  Fault.arm inj st.env;
  (try
     drive st;
     st.outcome <- Completed
   with
  | Env.Injected_fault { point; hit; _ }
  | Lsm_sim.Resilience.Unrecoverable { point; hit; _ } ->
     (* A raw injected fault at a non-I/O point, or a transient fault
        that exhausted the engine's retry budget *and* the supervisor's
        reschedules: real engines treat both as fail-stop. *)
     settle_crash st;
     T.crash st.t;
     T.recover st.t;
     st.outcome <- Crashed { point; hit });
  Env.clear_fault_hook st.env;
  (inj, st)

(** [smoke st] proves the recovered system still works: a few committed
    transactions, a flush (with merges), and a checkpoint.  Runs with the
    fault hook cleared; the model tracks the new writes so a re-check
    still holds. *)
let smoke st =
  for _ = 1 to 3 do
    let txn = T.begin_txn st.t in
    let pending = ref [] in
    st.inflight <- Some (T.txn_id txn, pending);
    for _ = 1 to 4 do
      let pk = 1 + Rng.int st.rng st.cfg.key_domain in
      let r = fresh_tweet st ~pk in
      T.upsert st.t txn r;
      pending := Op_up r :: !pending
    done;
    T.commit st.t txn;
    enqueue_inflight st;
    drain_settled st
  done;
  T.flush st.t;
  T.checkpoint st.t;
  drain_settled st
