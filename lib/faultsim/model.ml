(** An in-memory reference model of dataset semantics.

    The model is the oracle for differential checking: it implements
    upsert / delete / point / range with a plain hash table, so whatever
    strategy the real dataset runs under — Eager, Validation (Direct or
    Timestamp), Mutable-bitmap — its query results must coincide with the
    model's.  Range queries take the attribute extractor as an argument,
    so one model answers both secondary-key and filter-key (time-range)
    questions.

    For crash tests the driver applies a transaction's operations to the
    model only once its commit record is durable; the model then describes
    exactly the committed state recovery must reproduce. *)

module Make (R : sig
  type t

  val pk : t -> int
end) =
struct
  type t = {
    live : (int, R.t) Hashtbl.t;  (** pk -> current record *)
    ever : (int, unit) Hashtbl.t;  (** every pk ever touched *)
  }

  let create () = { live = Hashtbl.create 256; ever = Hashtbl.create 256 }

  let upsert m r =
    Hashtbl.replace m.live (R.pk r) r;
    Hashtbl.replace m.ever (R.pk r) ()

  let delete m pk =
    Hashtbl.remove m.live pk;
    Hashtbl.replace m.ever pk ()

  let point m pk = Hashtbl.find_opt m.live pk
  let count m = Hashtbl.length m.live

  (** [touched m] is every primary key any operation ever mentioned —
      checkers probe them all, so deleted keys are verified absent. *)
  let touched m =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m.ever [])

  let fold m f acc = Hashtbl.fold (fun _ r acc -> f r acc) m.live acc

  (** [range_by m attr ~lo ~hi] is the live records with
      [lo <= attr r <= hi], sorted by primary key. *)
  let range_by m attr ~lo ~hi =
    fold m (fun r acc -> if attr r >= lo && attr r <= hi then r :: acc else acc) []
    |> List.sort (fun a b -> compare (R.pk a) (R.pk b))

  let count_by m attr ~lo ~hi = List.length (range_by m attr ~lo ~hi)

  (** [keys_by m attr ~lo ~hi] is the (attribute, pk) pairs of live
      records in range, sorted — the index-only query's expected answer. *)
  let keys_by m attr ~lo ~hi =
    List.map (fun r -> (attr r, R.pk r)) (range_by m attr ~lo ~hi)
    |> List.sort compare
end
