(** The fault-matrix harness: enumerate every fault point a seeded
    scenario announces, choose a deterministic sample of (point, hit)
    plans within a budget, run each plan to its crash (or transient I/O
    error), and require the recovered state to pass the
    {!Checker} — twice, the second time after a post-recovery smoke
    workload proves the system still ingests, flushes, and checkpoints.

    Everything is derived from the scenario seed: a failure report names
    the exact plan, and one command replays it. *)

type failure = {
  f_plan : Fault.plan;
  f_stage : string;  (** ["post-recovery"] or ["post-smoke"] *)
  f_msgs : string list;
}

type report = {
  r_cfg : Scenario.config;
  r_points : (string * int) list;  (** counting-run announcement totals *)
  r_plans : Fault.plan list;  (** every plan the matrix ran *)
  r_crashed : int;  (** plans whose fault actually fired *)
  r_not_fired : Fault.plan list;
      (** selected plans that never triggered — an enumeration bug *)
  r_failures : failure list;
}

let ok r = r.r_failures = [] && r.r_not_fired = []

(* ------------------------------------------------------------------ *)
(* Plan selection *)

(** [select_plans ~kind ?fails ~budget hits] picks ~[budget] plans across
    the announced points: at least one per point, the rest distributed
    proportionally to announcement counts, hits stride-sampled across
    each point's range so early, middle, and late occurrences are all
    covered.  [fails] (default 1) makes every selected plan intermittent:
    fail that many consecutive announcements.  Purely arithmetic —
    deterministic given the counts. *)
let select_plans ~kind ?(fails = 1) ~budget hits =
  let hits = List.filter (fun (_, c) -> c > 0) hits in
  let npts = List.length hits in
  if npts = 0 || budget <= 0 then []
  else begin
    let total = List.fold_left (fun a (_, c) -> a + c) 0 hits in
    let extra = max 0 (budget - npts) in
    List.concat_map
      (fun (point, c) ->
        let quota = min c (1 + ((extra * c) + total - 1) / total) in
        let chosen = ref [] in
        for j = quota downto 1 do
          (* the j-th stride midpoint of [1, c] *)
          let h = 1 + (((2 * j) - 1) * c / (2 * quota)) in
          let h = max 1 (min c h) in
          match !chosen with
          | { Fault.hit; _ } :: _ when hit = h -> ()
          | _ -> chosen := { Fault.kind; point; hit = h; fails } :: !chosen
        done;
        List.rev !chosen)
      hits
  end

(* ------------------------------------------------------------------ *)
(* Matrix run *)

exception Baseline_failure of string list

(** [run cfg] enumerates (a fault-free counting run, which must itself
    pass the checker — otherwise the scenario or checker is broken and
    {!Baseline_failure} is raised), then runs a mixed matrix:
    ~[crash_budget] crash plans across every announced point,
    ~[io_budget] transient-error plans across the page-I/O points,
    ~[corrupt_budget] corruption plans (page checksum flips; the run must
    degrade, keep answering correctly, and heal), and
    ~[intermittent_budget] intermittent I/O plans split between windows
    the engine's retry budget absorbs ([fails = 2]) and windows that
    exhaust it and exercise the Unrecoverable path ([fails = 6]). *)
let run ?(crash_budget = 60) ?(io_budget = 12) ?(corrupt_budget = 8)
    ?(intermittent_budget = 6) cfg =
  let inj0, st0 = Scenario.run cfg in
  (match st0.Scenario.outcome with
  | Scenario.Completed -> ()
  | Scenario.Crashed _ -> assert false);
  (match Checker.check st0 with
  | [] -> ()
  | msgs -> raise (Baseline_failure msgs));
  let points = Fault.hits inj0 in
  let io_points =
    List.filter (fun (p, _) -> String.length p > 3 && String.sub p 0 3 = "io.")
      points
  in
  let absorbed = intermittent_budget / 2 in
  let plans =
    select_plans ~kind:Fault.Crash ~budget:crash_budget points
    @ select_plans ~kind:Fault.Io_error ~budget:io_budget io_points
    @ select_plans ~kind:Fault.Corrupt ~budget:corrupt_budget io_points
    @ select_plans ~kind:Fault.Io_error ~fails:2 ~budget:absorbed io_points
    @ select_plans ~kind:Fault.Io_error ~fails:6
        ~budget:(intermittent_budget - absorbed) io_points
  in
  let crashed = ref 0 in
  let not_fired = ref [] in
  let failures = ref [] in
  List.iter
    (fun plan ->
      let inj, st = Scenario.run ~plan cfg in
      if not (Fault.fired inj) then not_fired := plan :: !not_fired
      else begin
        (match st.Scenario.outcome with
        | Scenario.Crashed _ -> incr crashed
        | Scenario.Completed -> ());
        match Checker.check st with
        | _ :: _ as msgs ->
            failures :=
              { f_plan = plan; f_stage = "post-recovery"; f_msgs = msgs }
              :: !failures
        | [] -> (
            Scenario.smoke st;
            match Checker.check st with
            | [] -> ()
            | msgs ->
                failures :=
                  { f_plan = plan; f_stage = "post-smoke"; f_msgs = msgs }
                  :: !failures)
      end)
    plans;
  {
    r_cfg = cfg;
    r_points = points;
    r_plans = plans;
    r_crashed = !crashed;
    r_not_fired = List.rev !not_fired;
    r_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

(** The one command that replays a failing plan exactly. *)
let repro_command cfg (p : Fault.plan) =
  Printf.sprintf
    "lsm_repro faultsim --seed %d --txns %d%s%s%s%s --point %s --hit %d \
     --kind %s%s"
    cfg.Scenario.seed cfg.Scenario.txns
    (if cfg.Scenario.validation then " --validation" else "")
    (if cfg.Scenario.group_commit > 1 then
       Printf.sprintf " --group-commit %d" cfg.Scenario.group_commit
     else "")
    (if cfg.Scenario.maint_workers > 1 then
       Printf.sprintf " --maint-workers %d" cfg.Scenario.maint_workers
     else "")
    (if cfg.Scenario.mem_shards > 1 then
       Printf.sprintf " --mem-shards %d" cfg.Scenario.mem_shards
     else "")
    p.Fault.point p.Fault.hit
    (Fault.kind_to_string p.Fault.kind)
    (if p.Fault.fails > 1 then Printf.sprintf " --fails %d" p.Fault.fails
     else "")

let print_report ppf r =
  let cfg = r.r_cfg in
  Format.fprintf ppf "faultsim: seed %d, %d txns, strategy %s%s%s%s@."
    cfg.Scenario.seed cfg.Scenario.txns
    (if cfg.Scenario.validation then "validation" else "mutable-bitmap")
    (if cfg.Scenario.group_commit > 1 then
       Printf.sprintf ", group-commit %d" cfg.Scenario.group_commit
     else "")
    (if cfg.Scenario.maint_workers > 1 then
       Printf.sprintf ", maint-workers %d" cfg.Scenario.maint_workers
     else "")
    (if cfg.Scenario.mem_shards > 1 then
       Printf.sprintf ", mem-shards %d" cfg.Scenario.mem_shards
     else "");
  Format.fprintf ppf "fault points announced (drive phase):@.";
  List.iter
    (fun (p, c) -> Format.fprintf ppf "  %-22s %6d@." p c)
    r.r_points;
  Format.fprintf ppf "plans run: %d (%d fired as crashes)@."
    (List.length r.r_plans) r.r_crashed;
  List.iter
    (fun p ->
      Format.fprintf ppf "PLAN DID NOT FIRE: %s@.  repro: %s@."
        (Fault.describe p) (repro_command cfg p))
    r.r_not_fired;
  List.iter
    (fun f ->
      Format.fprintf ppf "FAILED (%s): %s@.  repro: %s@." f.f_stage
        (Fault.describe f.f_plan) (repro_command cfg f.f_plan);
      List.iter (fun m -> Format.fprintf ppf "    %s@." m) f.f_msgs)
    r.r_failures;
  if ok r then Format.fprintf ppf "all %d plans recovered to checker-accepted state@."
      (List.length r.r_plans)
  else
    Format.fprintf ppf "%d failures, %d unfired plans — reproduce with the commands above@."
      (List.length r.r_failures)
      (List.length r.r_not_fired)
