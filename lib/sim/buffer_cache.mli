(** Page-granular LRU buffer cache.  Keys are (file id, page number); the
    cache stores residency only — files in this simulation are phantom. *)

type t

val create : capacity_pages:int -> t
(** [create ~capacity_pages]: capacity 0 disables caching. *)

val size : t -> int
val capacity : t -> int

val mem : t -> int * int -> bool
(** Residency without touching recency. *)

val touch : t -> int * int -> bool
(** [touch t key] is [true] on a hit (promoting to MRU); [false] on a miss
    (caller fetches and {!insert}s). *)

val insert : t -> int * int -> unit
(** Make [key] resident at MRU, evicting the LRU page if at capacity. *)

val remove : t -> int * int -> unit
(** Discard one resident page (e.g. a checksum-failed copy); no-op if
    absent. *)

val drop_file : t -> int -> unit
(** Discard all pages of a deleted file. *)

val clear : t -> unit
(** Empty the cache (cold-cache experiments). *)
