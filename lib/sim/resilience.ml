(** Retry policy and typed failure for the resilience layer.

    Transient I/O faults ({!Env.Injected_fault} with kind [Io_error]) are
    retried at the I/O site with bounded exponential backoff; the backoff
    sleeps advance the simulated clock, so resilience is charged like any
    other cost.  When the per-site budget is exhausted the failure is
    surfaced as {!Unrecoverable} — a typed error the maintenance
    supervisor (lib/core) and the fault harness understand — never as a
    raw injected exception escaping the engine. *)

type policy = {
  max_retries : int;  (** extra attempts after the first failure *)
  backoff_us : float;  (** simulated sleep before the first retry *)
  backoff_factor : float;  (** multiplier per subsequent retry *)
}

(** Three retries starting at 100µs, doubling: worst case one I/O site
    absorbs 4 consecutive faults for 700µs of simulated backoff — small
    next to a device seek, large next to a page hit. *)
let default_policy = { max_retries = 3; backoff_us = 100.0; backoff_factor = 2.0 }

(** [backoff p ~attempt] is the simulated sleep before retry number
    [attempt] (0-based): [backoff_us * backoff_factor ^ attempt]. *)
let backoff p ~attempt =
  p.backoff_us *. (p.backoff_factor ** Float.of_int attempt)

exception
  Unrecoverable of { point : string; hit : int; attempts : int }
(** A transient fault persisted through every retry.  [point] and [hit]
    identify the injected fault that exhausted the budget; [attempts]
    counts tries made (first + retries). *)

let () =
  Printexc.register_printer (function
    | Unrecoverable { point; hit; attempts } ->
        Some
          (Printf.sprintf "Resilience.Unrecoverable(%s hit %d after %d attempts)"
             point hit attempts)
    | _ -> None)
