(** Retry policy and typed failure for the resilience layer.  The [Env]
    I/O sites retry transient injected faults under a {!policy}, charging
    the backoff to the simulated clock; exhaustion surfaces as
    {!Unrecoverable}. *)

type policy = {
  max_retries : int;  (** extra attempts after the first failure *)
  backoff_us : float;  (** simulated sleep before the first retry *)
  backoff_factor : float;  (** multiplier per subsequent retry *)
}

val default_policy : policy
(** 3 retries, 100µs initial backoff, doubling. *)

val backoff : policy -> attempt:int -> float
(** Simulated sleep before retry [attempt] (0-based). *)

exception
  Unrecoverable of { point : string; hit : int; attempts : int }
(** A transient fault persisted through every retry; [attempts] counts
    tries made (first + retries). *)
