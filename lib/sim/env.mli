(** The storage environment: one simulated device, its buffer cache, a CPU
    cost model, I/O statistics, and the simulated clock.  Every structure
    in the engine performs its I/O through an [Env.t]; the clock advances
    only through the charging functions here. *)

type cpu_model = {
  cmp_us : float;  (** one key comparison *)
  cache_line_us : float;  (** one CPU cache-line miss (Bloom probes) *)
  hash_us : float;  (** one hash evaluation *)
  page_hit_us : float;  (** touching a buffer-cache-resident page *)
  entry_us : float;  (** consuming one index entry *)
}

val default_cpu : page_size:int -> cpu_model

type t

(** {1 Fault injection}

    Environments carry an optional fault hook, [None] by default (one
    predicted branch per {!fault_point}).  The engine announces every
    crash-relevant transition — cache-missing page reads ([io.read]),
    page-write batches ([io.write]), flush/merge begin and install, WAL
    append/commit boundaries, checkpoint phases — and an installed hook
    may raise {!Injected_fault} to simulate a crash, a transient I/O
    error, or silent page corruption at exactly that point.  See
    [lib/faultsim]. *)

type fault_kind = Crash | Io_error | Corrupt

exception
  Injected_fault of { kind : fault_kind; point : string; hit : int }
(** Raised by fault hooks.  [hit] is the 1-based occurrence index of
    [point] within the run, so a failure reproduces from (seed, point,
    hit) alone. *)

val string_of_fault_kind : fault_kind -> string
(** Canonical spellings: ["crash"], ["io"], ["corrupt"]. *)

val fault_point : t -> string -> unit
(** [fault_point t name] announces the failure site [name] to the
    installed hook, if any. *)

val set_fault_hook : t -> (string -> unit) -> unit
val clear_fault_hook : t -> unit

(** {1 Resilience}

    The I/O announcement sites ([io.read], [io.write]) absorb transient
    injected faults: an [Io_error] is retried under the environment's
    {!Resilience.policy} with exponential backoff charged to the
    simulated clock, and each retry re-announces the point (so an
    intermittent "fail [k] times" plan composes with the budget).
    Exhaustion raises {!Resilience.Unrecoverable}.  A [Corrupt] fault
    does not raise at all: it marks the page under I/O as failing its
    simulated per-page checksum, and the next read of that page detects
    the mismatch, evicts the cached copy, and counts a
    [checksum_failure] — readers then consult {!file_corrupt} to
    quarantine the owning component.  With no corrupt pages recorded the
    verification is one integer branch per read. *)

type resil_stats = {
  mutable retries : int;  (** transient faults absorbed by backoff *)
  mutable exhausted : int;  (** retry budgets exhausted (Unrecoverable) *)
  mutable checksum_failures : int;  (** corrupt pages detected at read *)
  mutable degraded_probes : int;  (** Bloom probes skipped on quarantine *)
  mutable quarantines : int;  (** components quarantined *)
  mutable rebuilds : int;  (** components rebuilt or scrubbed by heal *)
  mutable reschedules : int;  (** maintenance passes rescheduled *)
}

val resil : t -> resil_stats

(** {1 Sorted views (REMIX)}

    Event counters for the cross-component sorted views maintained by the
    LSM layer ([Lsm_tree]'s [Sorted_view]); published as [view.*] gauges
    by {!publish_io_metrics}. *)

type view_stats = {
  mutable builds : int;  (** sorted views (re)built *)
  mutable build_rows : int;  (** positions written into views *)
  mutable build_pages : int;  (** view pages appended *)
  mutable view_scans : int;  (** reconciling scans served from a view *)
  mutable segments : int;  (** anchor segments entered by view scans *)
  mutable rows_skipped : int;
      (** positions passed over (masked, bitmap-invalid, or shadowed by a
          newer duplicate) *)
  mutable rows_emitted : int;  (** key groups resolved by view scans *)
  mutable invalidations : int;  (** views dropped by a structural change *)
  mutable fallbacks : int;  (** eligible scans that fell back to the heap *)
}

val view_stats : t -> view_stats
val retry_policy : t -> Resilience.policy
val set_retry_policy : t -> Resilience.policy -> unit

val set_io_penalty : t -> float -> unit
(** [set_io_penalty t f] scales all device I/O time (positioning and
    transfer, reads and writes) by [f], clamped to [>= 1.0], until the
    next call.  Models a degraded device — a chaos plan's slow-I/O
    window — without any operation erroring.  Cache hits and CPU
    charges are unaffected. *)

val io_penalty : t -> float

val mark_corrupt : t -> file:int -> page:int -> unit
(** Record that a page fails its checksum (idempotent). *)

val corrupt_page_count : t -> int

val file_corrupt : t -> file:int -> bool
(** True when any page of [file] fails its checksum.  Cleared by
    {!drop_file} — deleting the file is how corruption physically leaves
    the system. *)

val create :
  ?cache_bytes:int -> ?read_ahead_bytes:int -> ?cpu:cpu_model -> Device.t -> t
(** [create device]: default cache 64MB; default read-ahead 32 pages (the
    paper's 4MB at its 128KB page size). *)

val device : t -> Device.t
val page_size : t -> int
val stats : t -> Io_stats.t
val cache : t -> Buffer_cache.t
val read_ahead_pages : t -> int

val now_us : t -> float
(** Simulated clock, microseconds since creation. *)

val now_s : t -> float

val advance : t -> float -> unit
(** [advance t us] moves the clock forward (cost-model internals). *)

val rewind : t -> float -> unit
(** [rewind t us] moves the clock back by [us] >= 0 (clamped at zero).
    Reserved for the overlapping-maintenance scheduler, which interleaves
    concurrent merge jobs on this single clock (summing their busy time)
    and then rewinds to the modeled W-worker makespan so wall-clock
    consumers see pipeline cost, not serial cost. *)

(** {1 CPU charging} *)

val charge_comparisons : t -> int -> unit
val charge_hashes : t -> int -> unit
val charge_entry_visits : t -> int -> unit

val charge_cache_lines : t -> int -> unit
(** Blocked Bloom filters exist to make this 1 per probe instead of [k]. *)

val charge_page_hit : t -> unit
(** Touching a page held in a private read-ahead buffer. *)

(** {1 I/O} *)

val fresh_file_id : t -> int

val read_page : t -> file:int -> page:int -> unit
(** Free-ish on a cache hit; otherwise a transfer plus a positioning cost
    if the device head is not on the preceding page of the same file. *)

val write_pages : t -> file:int -> first:int -> count:int -> unit
(** One positioning plus sequential transfers; freshly written pages are
    made cache-resident. *)

val drop_file : t -> file:int -> unit

val reset_measurement : t -> unit
(** Clear statistics without touching clock, cache, or files. *)

(** {1 Memory introspection}

    Environments know who holds in-memory bytes against them: datasets
    register a probe reporting their memory-component footprint, so a
    cross-partition coordinator ([Lsm_serve.Budget]) can ask "how much
    memory does each partition hold right now" without reaching into
    engine internals (paper Sec. 2.3's shared memory-component budget). *)

val register_mem_probe : t -> (unit -> int) -> unit
(** Register a reporter of in-memory bytes held against this
    environment.  [Dataset.create] registers its memory-component
    total. *)

val mem_bytes : t -> int
(** Sum of all registered probes: the environment's current in-memory
    footprint in bytes. *)

val set_mem_budget : t -> int option -> unit
(** Stamp an advisory budget, surfaced as a [mem.budget_bytes] gauge by
    {!publish_io_metrics}.  Enforcement is the caller's job. *)

val mem_budget : t -> int option

(** {1 Observability (lsm_obs)}

    Environments carry an {!Lsm_obs.Obs.t} handle, disabled by default.
    The engine's hot paths are instrumented unconditionally through
    {!span}; disabled, each instrumentation point costs one branch. *)

val obs : t -> Lsm_obs.Obs.t
val tracer : t -> Lsm_obs.Tracer.t
val metrics : t -> Lsm_obs.Metrics.t

val enable_obs : ?trace_capacity:int -> t -> Lsm_obs.Obs.t
(** Install (and return) an enabled handle whose span tracer is stamped
    with this environment's simulated clock. *)

val explain : t -> Lsm_obs.Explain.t

val enable_explain : t -> Lsm_obs.Explain.t
(** Install (and return) an active plan recorder stamped with this
    environment's simulated clock and fed by its {!Io_stats} counters;
    every {!span} site then doubles as a plan-tree node.  Independent of
    {!enable_obs}. *)

val explain_annotate : t -> (string * string) list -> unit
val explain_count : t -> string -> int -> unit
(** Attach properties / bump a named counter on the innermost in-flight
    plan node; one branch when explain is off. *)

val amp : t -> Lsm_obs.Ampstats.t
(** Flush/merge amplification accounting.  Always on, fed by the LSM
    engine; survives {!reset_measurement} (reset it explicitly with
    {!Lsm_obs.Ampstats.reset} if a phase boundary should discard it). *)

val span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a tracer span that carries the {!Io_stats} deltas
    it caused as span arguments, and feed its simulated duration into the
    [span.<name>] latency histogram.  Doubles as a plan node when a
    recorder is active. *)

type span_event = {
  sp_name : string;
  sp_cat : string;  (** [""] when the span carried no category *)
  sp_start_us : float;  (** this environment's clock at span entry *)
  sp_dur_us : float;
}

val set_span_hook : t -> (span_event -> unit) -> unit
(** Install a telemetry tap fired at every {!span} completion —
    independent of {!enable_obs}, so a timeline collector can watch
    maintenance spans (flush, merge, view builds) without paying for
    full tracing.  One hook per environment; [None] by default (one
    branch per span). *)

val clear_span_hook : t -> unit

val emit_span :
  t -> ?cat:string -> string -> start_us:float -> dur_us:float -> unit
(** Report a section not executed under a {!span} scope (the
    overlapping-maintenance scheduler's interleaved merge jobs): feeds
    the [span.<name>] histogram and the {!set_span_hook} tap with the
    given coordinates. *)

val publish_io_metrics : t -> unit
(** Bridge the {!Io_stats} counters accumulated since the last publish
    into [io.*] registry counters (via {!Io_stats.diff}), refresh the
    cache-occupancy and clock gauges, and mirror {!amp} into [amp.*]
    gauges. *)
