(** Counters describing the work performed against a storage environment.

    Experiments report simulated time, but the counters are what make the
    simulation auditable: tests assert, e.g., that a batched point lookup
    performs strictly fewer seeks than a naive one on the same key set. *)

type t = {
  mutable pages_read : int;  (** pages fetched from the device *)
  mutable seq_reads : int;  (** of which sequential w.r.t. the head *)
  mutable rand_reads : int;  (** of which required a positioning *)
  mutable pages_written : int;
  mutable write_batches : int;  (** distinct sequential write bursts *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable bloom_probes : int;
  mutable bloom_negatives : int;  (** probes answered "definitely absent" *)
  mutable bloom_fps : int;
      (** false positives: positive probes whose component search missed *)
  mutable bloom_cache_lines : int;  (** CPU cache lines touched by probes *)
  mutable comparisons : int;  (** key comparisons in searches and sorts *)
  mutable cursor_restarts : int;
      (** stateful B+-tree cursor searches that had to move backwards *)
}

let create () =
  {
    pages_read = 0;
    seq_reads = 0;
    rand_reads = 0;
    pages_written = 0;
    write_batches = 0;
    cache_hits = 0;
    cache_misses = 0;
    bloom_probes = 0;
    bloom_negatives = 0;
    bloom_fps = 0;
    bloom_cache_lines = 0;
    comparisons = 0;
    cursor_restarts = 0;
  }

let reset t =
  t.pages_read <- 0;
  t.seq_reads <- 0;
  t.rand_reads <- 0;
  t.pages_written <- 0;
  t.write_batches <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.bloom_probes <- 0;
  t.bloom_negatives <- 0;
  t.bloom_fps <- 0;
  t.bloom_cache_lines <- 0;
  t.comparisons <- 0;
  t.cursor_restarts <- 0

let copy t =
  {
    pages_read = t.pages_read;
    seq_reads = t.seq_reads;
    rand_reads = t.rand_reads;
    pages_written = t.pages_written;
    write_batches = t.write_batches;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    bloom_probes = t.bloom_probes;
    bloom_negatives = t.bloom_negatives;
    bloom_fps = t.bloom_fps;
    bloom_cache_lines = t.bloom_cache_lines;
    comparisons = t.comparisons;
    cursor_restarts = t.cursor_restarts;
  }

(** [diff a b] is the counter-wise difference [a - b]; useful for measuring
    a single operation against a shared environment. *)
let diff a b =
  {
    pages_read = a.pages_read - b.pages_read;
    seq_reads = a.seq_reads - b.seq_reads;
    rand_reads = a.rand_reads - b.rand_reads;
    pages_written = a.pages_written - b.pages_written;
    write_batches = a.write_batches - b.write_batches;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    bloom_probes = a.bloom_probes - b.bloom_probes;
    bloom_negatives = a.bloom_negatives - b.bloom_negatives;
    bloom_fps = a.bloom_fps - b.bloom_fps;
    bloom_cache_lines = a.bloom_cache_lines - b.bloom_cache_lines;
    comparisons = a.comparisons - b.comparisons;
    cursor_restarts = a.cursor_restarts - b.cursor_restarts;
  }

(** [fields t] names every counter — the single source of truth for
    bridging into the metrics registry and for span I/O arguments. *)
let fields t =
  [
    ("pages_read", t.pages_read);
    ("seq_reads", t.seq_reads);
    ("rand_reads", t.rand_reads);
    ("pages_written", t.pages_written);
    ("write_batches", t.write_batches);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("bloom_probes", t.bloom_probes);
    ("bloom_negatives", t.bloom_negatives);
    ("bloom_fps", t.bloom_fps);
    ("bloom_cache_lines", t.bloom_cache_lines);
    ("comparisons", t.comparisons);
    ("cursor_restarts", t.cursor_restarts);
  ]

let pp fmt t =
  Fmt.pf fmt
    "reads=%d (seq=%d rand=%d) writes=%d hits=%d misses=%d bloom=%d/%d \
     (fp=%d) cmp=%d restarts=%d"
    t.pages_read t.seq_reads t.rand_reads t.pages_written t.cache_hits
    t.cache_misses t.bloom_negatives t.bloom_probes t.bloom_fps t.comparisons
    t.cursor_restarts
