(** A page-granular LRU buffer cache.

    Mirrors the disk buffer cache of the paper's setup (2GB on the hard
    disk node, 4GB on the SSD node, 512MB in the small-cache experiment of
    Fig. 18).  Keys are (file id, page number); the cache stores no data —
    files in this simulation are phantom — only residency, which is what
    the cost model needs.

    Implementation: hash table + intrusive doubly-linked LRU list. *)

type node = {
  key : int * int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;  (** max resident pages; 0 disables caching *)
  table : (int * int, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used *)
  mutable size : int;
}

let create ~capacity_pages =
  {
    capacity = max capacity_pages 0;
    table = Hashtbl.create 4096;
    head = None;
    tail = None;
    size = 0;
  }

let size t = t.size
let capacity t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

(** [mem t key] reports residency without touching recency. *)
let mem t key = Hashtbl.mem t.table key

(** [touch t key] returns [true] on a hit (promoting the page to MRU) and
    [false] on a miss (the caller is expected to fetch and [insert]). *)
let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      unlink t node;
      push_front t node;
      true
  | None -> false

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.size <- t.size - 1

(** [insert t key] makes [key] resident at MRU position, evicting the LRU
    page if at capacity.  A no-op for an already-resident page or a
    zero-capacity cache. *)
let insert t key =
  if t.capacity > 0 then
    if touch t key then ()
    else begin
      if t.size >= t.capacity then evict_lru t;
      let node = { key; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      t.size <- t.size + 1
    end

(** [remove t key] discards one resident page (a checksum-failed copy
    must not be served from cache).  A no-op if not resident. *)
let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      t.size <- t.size - 1

(** [drop_file t file_id] discards all resident pages of a deleted file so
    they stop occupying capacity (components are deleted after a merge). *)
let drop_file t file_id =
  let doomed =
    Hashtbl.fold
      (fun ((f, _) as k) node acc -> if f = file_id then (k, node) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (k, node) ->
      unlink t node;
      Hashtbl.remove t.table k;
      t.size <- t.size - 1)
    doomed

(** [clear t] empties the cache (used to run cold-cache experiments). *)
let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
