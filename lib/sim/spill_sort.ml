(** Sorting with spill accounting.

    Operators that sort (repair streams, fetched-record reordering) hold a
    bounded memory grant; sorting more than fits must write sorted runs to
    scratch storage and merge-read them back.  The comparisons are real
    (counted into the CPU model); the spill traffic is charged through a
    scratch phantom file, so an experiment that shrinks a sort's input —
    like the Bloom-filter repair optimization — saves measurable I/O. *)

type grant = {
  memory_bytes : int;  (** in-memory sort capacity *)
  row_bytes : int;  (** serialized size of one row *)
}

let grant ~memory_bytes ~row_bytes = { memory_bytes; row_bytes = max 1 row_bytes }

let fits g n = n * g.row_bytes <= g.memory_bytes

(** [sort env g ~cmp a] sorts [a] in place, charging comparisons and — if
    [a] exceeds the grant — one run-write plus one merge-read pass of the
    whole volume (a single extra pass suffices for any realistic fan-in). *)
let sort env g ~cmp a =
  let cost = ref 0 in
  Lsm_util.Sorter.sort ~cmp ~cost a;
  Env.charge_comparisons env !cost;
  let n = Array.length a in
  if not (fits g n) then begin
    let bytes = n * g.row_bytes in
    let pages = 1 + ((bytes - 1) / Env.page_size env) in
    let scratch = Sfile.create env in
    (* Scratch must not outlive the sort even when the spill I/O fails:
       an orphaned file would keep its (possibly corrupt) pages alive. *)
    (try
       Sfile.append_pages env scratch pages;
       Sfile.scan_all env scratch
     with e ->
       Sfile.delete env scratch;
       raise e);
    Sfile.delete env scratch
  end;
  Env.charge_entry_visits env n
