(** Counters describing work performed against a storage environment —
    the auditable side of the simulation (tests assert on these, not just
    on simulated time). *)

type t = {
  mutable pages_read : int;
  mutable seq_reads : int;  (** of which sequential w.r.t. the device head *)
  mutable rand_reads : int;  (** of which required a positioning *)
  mutable pages_written : int;
  mutable write_batches : int;  (** distinct sequential write bursts *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable bloom_probes : int;
  mutable bloom_negatives : int;  (** probes answered "definitely absent" *)
  mutable bloom_fps : int;
      (** false positives: positive probes whose component search missed *)
  mutable bloom_cache_lines : int;  (** CPU cache lines touched by probes *)
  mutable comparisons : int;  (** key comparisons in searches and sorts *)
  mutable cursor_restarts : int;
      (** stateful B+-tree cursor searches that had to move backwards *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff a b] is the counter-wise difference [a - b]. *)

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair — the bridge into the metrics
    registry and span I/O arguments. *)

val pp : Format.formatter -> t -> unit
