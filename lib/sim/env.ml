(** The storage environment: one simulated device, its buffer cache, a CPU
    cost model, I/O statistics, and the simulated clock.

    Every structure in the engine performs its I/O through an [Env.t], so
    "how long did this operation take" is always [now_us] before/after, and
    "what did it do" is always an {!Io_stats.t} diff.  The clock advances
    only through the charging functions here, which keeps the cost model in
    one auditable place. *)

type cpu_model = {
  cmp_us : float;  (** one key comparison *)
  cache_line_us : float;  (** one CPU cache-line miss (Bloom probes) *)
  hash_us : float;  (** one hash evaluation *)
  page_hit_us : float;  (** touching a buffer-cache-resident page *)
  entry_us : float;  (** consuming one index entry (deserialize + copy) *)
}

(** Default CPU costs, sized so that in-memory effects are visible next to
    scaled-down I/O, mirroring their relative weight in the paper's setup:
    a comparison is ~ns-scale, a cache miss ~100ns, and touching a cached
    page costs memory bandwidth proportional to the page size. *)
let default_cpu ~page_size =
  ignore page_size;
  {
    cmp_us = 0.005;
    cache_line_us = 0.06;
    hash_us = 0.01;
    (* Touching a resident page is a hash-table probe and a latch, not a
       full-page copy; consumers of page *contents* pay [entry_us] per
       entry they actually read. *)
    page_hit_us = 0.3;
    entry_us = 0.02;
  }

type t = {
  device : Device.t;
  cache : Buffer_cache.t;
  stats : Io_stats.t;
  cpu : cpu_model;
  read_ahead_pages : int;
      (** pages a sequential scan stream fetches per device request; the
          paper uses 4MB read-ahead "to minimize random I/Os" when many
          scan streams interleave (Sec. 6.1) *)
  mutable now_us : float;
  mutable next_file_id : int;
  (* Device head position, for sequential-vs-random classification. *)
  mutable head_file : int;
  mutable head_page : int;
  mutable obs : Lsm_obs.Obs.t;
      (** observability handle; {!Lsm_obs.Obs.disabled} by default, so the
          instrumentation below costs one branch per call *)
  mutable published : Io_stats.t;
      (** statistics snapshot at the last {!publish_io_metrics} *)
  mutable explain : Lsm_obs.Explain.t;
      (** plan recorder; {!Lsm_obs.Explain.disabled} by default — every
          {!span} site doubles as a plan node when this is active *)
  amp : Lsm_obs.Ampstats.t;
      (** flush/merge amplification accounting; always on — the engine
          reports every flush and merge here *)
  mutable fault : (string -> unit) option;
      (** fault-injection hook; [None] by default, so every {!fault_point}
          in the engine costs one branch.  The hook observes the point name
          and may raise {!Injected_fault} to simulate a crash, a transient
          I/O error, or silent corruption at exactly that point. *)
  mutable retry : Resilience.policy;
      (** retry budget for transient faults at the I/O sites *)
  resil : resil_stats;  (** resilience event counters *)
  view : view_stats;  (** sorted-view (REMIX) event counters *)
  mutable mem_probes : (unit -> int) list;
      (** registered in-memory-footprint reporters (datasets register
          their memory-component byte totals); {!mem_bytes} sums them *)
  mutable mem_budget : int option;
      (** advisory memory budget for this environment, surfaced as a
          [mem.budget_bytes] gauge; enforcement lives with the caller
          (a dataset's own budget, or [Lsm_serve.Budget]'s global one) *)
  mutable span_hook : (span_event -> unit) option;
      (** telemetry tap fired at every {!span} completion, independent of
          the obs handle (so a timeline can watch maintenance spans
          without paying for full tracing); [None] by default — one
          branch per span *)
  mutable io_penalty : float;
      (** multiplier on device I/O transfer/positioning time, >= 1.0;
          1.0 (the default) is a clean device.  A chaos plan raises it
          for a window to model a degraded disk (firmware retries, a
          failing sector remap) without any request erroring. *)
  corrupt : (int * int, unit) Hashtbl.t;
      (** (file, page) pairs whose simulated checksum fails *)
  corrupt_files : (int, int) Hashtbl.t;
      (** file -> number of corrupt pages on it *)
  mutable n_corrupt : int;
      (** total corrupt pages; checksum verification is one branch when 0 *)
}

and span_event = {
  sp_name : string;
  sp_cat : string;  (** [""] when the span carried no category *)
  sp_start_us : float;  (** this environment's clock at span entry *)
  sp_dur_us : float;
}

and resil_stats = {
  mutable retries : int;
  mutable exhausted : int;
  mutable checksum_failures : int;
  mutable degraded_probes : int;
  mutable quarantines : int;
  mutable rebuilds : int;
  mutable reschedules : int;
}

and view_stats = {
  mutable builds : int;  (** sorted views (re)built *)
  mutable build_rows : int;  (** positions written into views *)
  mutable build_pages : int;  (** view pages appended *)
  mutable view_scans : int;  (** reconciling scans served from a view *)
  mutable segments : int;  (** anchor segments entered by view scans *)
  mutable rows_skipped : int;  (** positions passed over (masked/invalid/shadowed) *)
  mutable rows_emitted : int;  (** key groups resolved by view scans *)
  mutable invalidations : int;  (** views dropped by a structural change *)
  mutable fallbacks : int;  (** eligible scans that fell back to the heap *)
}

type fault_kind = Crash | Io_error | Corrupt

exception
  Injected_fault of { kind : fault_kind; point : string; hit : int }

let string_of_fault_kind = function
  | Crash -> "crash"
  | Io_error -> "io"
  | Corrupt -> "corrupt"

let () =
  Printexc.register_printer (function
    | Injected_fault { kind; point; hit } ->
        Some
          (Printf.sprintf "Injected_fault(%s at %s hit %d)"
             (string_of_fault_kind kind) point hit)
    | _ -> None)

(** [create ?cache_bytes ?cpu device] builds an environment.  The default
    cache is 64MB — a scaled-down analogue of the paper's 2GB buffer cache
    against its 30GB datasets. *)
let create ?(cache_bytes = 64 * 1024 * 1024) ?read_ahead_bytes ?cpu device =
  let cpu =
    match cpu with
    | Some c -> c
    | None -> default_cpu ~page_size:device.Device.page_size
  in
  let read_ahead_bytes =
    (* Default: 4MB scaled by the ratio of the device page to the paper's
       128KB pages, i.e. always 32 pages. *)
    match read_ahead_bytes with
    | Some b -> b
    | None -> 32 * device.Device.page_size
  in
  {
    device;
    cache = Buffer_cache.create ~capacity_pages:(cache_bytes / device.Device.page_size);
    stats = Io_stats.create ();
    cpu;
    read_ahead_pages = max 1 (read_ahead_bytes / device.Device.page_size);
    now_us = 0.0;
    next_file_id = 0;
    head_file = -1;
    head_page = -1;
    obs = Lsm_obs.Obs.disabled;
    published = Io_stats.create ();
    explain = Lsm_obs.Explain.disabled;
    amp = Lsm_obs.Ampstats.create ();
    fault = None;
    retry = Resilience.default_policy;
    resil =
      {
        retries = 0;
        exhausted = 0;
        checksum_failures = 0;
        degraded_probes = 0;
        quarantines = 0;
        rebuilds = 0;
        reschedules = 0;
      };
    view =
      {
        builds = 0;
        build_rows = 0;
        build_pages = 0;
        view_scans = 0;
        segments = 0;
        rows_skipped = 0;
        rows_emitted = 0;
        invalidations = 0;
        fallbacks = 0;
      };
    mem_probes = [];
    mem_budget = None;
    span_hook = None;
    io_penalty = 1.0;
    corrupt = Hashtbl.create 7;
    corrupt_files = Hashtbl.create 7;
    n_corrupt = 0;
  }

(** [fault_point t name] announces a potential failure site to the
    installed fault hook (if any).  The engine places these at every
    crash-relevant transition — page I/O, flush/merge begin and install,
    WAL append/commit, checkpoint phases — so a fault plan can enumerate
    and target them deterministically. *)
let fault_point t name = match t.fault with None -> () | Some f -> f name

let set_fault_hook t f = t.fault <- Some f
let clear_fault_hook t = t.fault <- None

let read_ahead_pages t = t.read_ahead_pages

let device t = t.device
let page_size t = t.device.Device.page_size
let stats t = t.stats
let cache t = t.cache

(** [now_us t] is the simulated clock in microseconds since creation. *)
let now_us t = t.now_us

(** [now_s t] is the simulated clock in seconds. *)
let now_s t = t.now_us /. 1e6

(** [advance t us] advances the clock by [us] microseconds. *)
let advance t us = t.now_us <- t.now_us +. us

(** [rewind t us] moves the clock back by [us] >= 0 microseconds (clamped
    at zero).  The one legitimate caller is the overlapping-maintenance
    scheduler: it executes concurrent merge jobs interleaved on this
    single clock — which sums their busy time — and then rewinds by the
    difference between that serial sum and the modeled W-worker makespan,
    so downstream consumers (the serving driver's clock deltas, span
    durations) see the pipeline's wall-clock cost, not the sum. *)
let rewind t us = if us > 0.0 then t.now_us <- Float.max 0.0 (t.now_us -. us)

(* ------------------------------------------------------------------ *)
(* Memory introspection: who holds how many in-memory bytes against
   this environment, and against what budget. *)

(** [register_mem_probe t f] registers a reporter of in-memory bytes held
    against this environment (datasets register the byte total of their
    memory components at creation); {!mem_bytes} sums all reporters. *)
let register_mem_probe t f = t.mem_probes <- f :: t.mem_probes

(** [mem_bytes t] is the current in-memory footprint reported by all
    registered probes, in bytes. *)
let mem_bytes t = List.fold_left (fun acc f -> acc + f ()) 0 t.mem_probes

let set_mem_budget t b = t.mem_budget <- b
let mem_budget t = t.mem_budget

(** [set_io_penalty t f] scales device I/O time by [f] >= 1.0 until reset
    (a slow-I/O fault window); cache hits and CPU charges are unaffected. *)
let set_io_penalty t f = t.io_penalty <- Float.max 1.0 f

let io_penalty t = t.io_penalty

(* ------------------------------------------------------------------ *)
(* Resilience: retry/backoff at the I/O sites, page-checksum state *)

let resil t = t.resil
let view_stats t = t.view
let retry_policy t = t.retry
let set_retry_policy t p = t.retry <- p

(** [mark_corrupt t ~file ~page] records that [page] of [file] now fails
    its checksum (a [Corrupt] fault flipped payload bytes; the write
    itself "succeeded").  Idempotent. *)
let mark_corrupt t ~file ~page =
  if not (Hashtbl.mem t.corrupt (file, page)) then begin
    Hashtbl.replace t.corrupt (file, page) ();
    let n = try Hashtbl.find t.corrupt_files file with Not_found -> 0 in
    Hashtbl.replace t.corrupt_files file (n + 1);
    t.n_corrupt <- t.n_corrupt + 1
  end

let corrupt_page_count t = t.n_corrupt

(** [file_corrupt t ~file] is true when any page of [file] fails its
    checksum. *)
let file_corrupt t ~file = Hashtbl.mem t.corrupt_files file

(** [announce_io t point ~file ~page] announces an I/O fault site and
    absorbs transient faults: an injected [Io_error] is retried up to the
    policy budget with exponential backoff charged to the simulated
    clock (each retry re-announces the point, so an intermittent plan can
    fail it again); exhaustion raises {!Resilience.Unrecoverable}.  An
    injected [Corrupt] silently marks [page] of [file] as failing its
    checksum and lets the I/O proceed — detection happens at read time.
    [Crash] propagates untouched. *)
let announce_io t point ~file ~page =
  match t.fault with
  | None -> ()
  | Some hook ->
      let rec go attempt =
        match hook point with
        | () -> ()
        | exception Injected_fault { kind = Corrupt; _ } ->
            mark_corrupt t ~file ~page
        | exception Injected_fault { kind = Io_error; point = pt; hit } ->
            if attempt < t.retry.Resilience.max_retries then begin
              t.resil.retries <- t.resil.retries + 1;
              advance t (Resilience.backoff t.retry ~attempt);
              go (attempt + 1)
            end
            else begin
              t.resil.exhausted <- t.resil.exhausted + 1;
              raise
                (Resilience.Unrecoverable
                   { point = pt; hit; attempts = attempt + 1 })
            end
      in
      go 0

(** [verify_page t ~file ~page] simulates checksum verification of a page
    the caller just read.  Callers guard on [n_corrupt > 0], so the whole
    resilience layer costs one integer branch per read when the device is
    clean.  Detection evicts the page so the bad copy is not served from
    cache, and raises nothing — quarantine is the reader's decision
    (see {!file_corrupt}). *)
let verify_page t ~file ~page =
  if Hashtbl.mem t.corrupt (file, page) then begin
    t.resil.checksum_failures <- t.resil.checksum_failures + 1;
    Buffer_cache.remove t.cache (file, page)
  end

(** [charge_comparisons t n] accounts for [n] key comparisons. *)
let charge_comparisons t n =
  if n > 0 then begin
    t.stats.Io_stats.comparisons <- t.stats.Io_stats.comparisons + n;
    advance t (Float.of_int n *. t.cpu.cmp_us)
  end

(** [charge_hashes t n] accounts for [n] hash evaluations. *)
let charge_hashes t n = if n > 0 then advance t (Float.of_int n *. t.cpu.hash_us)

(** [charge_entry_visits t n] accounts for consuming [n] index entries. *)
let charge_entry_visits t n =
  if n > 0 then advance t (Float.of_int n *. t.cpu.entry_us)

(** [charge_cache_lines t n] accounts for [n] CPU cache-line misses; blocked
    Bloom filters exist to make this 1 per probe instead of [k]. *)
let charge_cache_lines t n =
  if n > 0 then begin
    t.stats.Io_stats.bloom_cache_lines <- t.stats.Io_stats.bloom_cache_lines + n;
    advance t (Float.of_int n *. t.cpu.cache_line_us)
  end

(** [charge_page_hit t] accounts for touching a page held in a private
    read-ahead buffer (scan streams prefetch [read_ahead_pages] at a
    time; pages inside the window cost only the in-memory touch). *)
let charge_page_hit t =
  t.stats.Io_stats.cache_hits <- t.stats.Io_stats.cache_hits + 1;
  advance t t.cpu.page_hit_us

let fresh_file_id t =
  let id = t.next_file_id in
  t.next_file_id <- id + 1;
  id

(** [read_page t ~file ~page] charges for one page read: free-ish on a cache
    hit; otherwise a transfer, plus a positioning cost if the device head is
    not already on the preceding page of the same file. *)
let read_page t ~file ~page =
  let key = (file, page) in
  if Buffer_cache.touch t.cache key then begin
    t.stats.Io_stats.cache_hits <- t.stats.Io_stats.cache_hits + 1;
    advance t t.cpu.page_hit_us
  end
  else begin
    announce_io t "io.read" ~file ~page;
    t.stats.Io_stats.cache_misses <- t.stats.Io_stats.cache_misses + 1;
    t.stats.Io_stats.pages_read <- t.stats.Io_stats.pages_read + 1;
    let sequential = t.head_file = file && t.head_page + 1 = page in
    if sequential then begin
      t.stats.Io_stats.seq_reads <- t.stats.Io_stats.seq_reads + 1;
      advance t (t.device.Device.read_us_per_page *. t.io_penalty)
    end
    else begin
      t.stats.Io_stats.rand_reads <- t.stats.Io_stats.rand_reads + 1;
      advance t
        ((t.device.Device.seek_us +. t.device.Device.read_us_per_page)
        *. t.io_penalty)
    end;
    t.head_file <- file;
    t.head_page <- page;
    Buffer_cache.insert t.cache key
  end;
  if t.n_corrupt > 0 then verify_page t ~file ~page

(** [write_pages t ~file ~first ~count] charges for appending [count] pages:
    one positioning plus sequential transfers.  Freshly written pages are
    made cache-resident (flushes and merges leave their output hot, as an
    OS page cache would). *)
let write_pages t ~file ~first ~count =
  if count > 0 then begin
    announce_io t "io.write" ~file ~page:first;
    t.stats.Io_stats.pages_written <- t.stats.Io_stats.pages_written + count;
    t.stats.Io_stats.write_batches <- t.stats.Io_stats.write_batches + 1;
    advance t
      ((t.device.Device.seek_us
       +. (Float.of_int count *. t.device.Device.write_us_per_page))
      *. t.io_penalty);
    t.head_file <- file;
    t.head_page <- first + count - 1;
    for p = first to first + count - 1 do
      Buffer_cache.insert t.cache (file, p)
    done
  end

(** [drop_file t ~file] releases cache residency for a deleted file and
    forgets any corruption recorded against it — deleting a component's
    file (merge, rebuild) is how corrupt pages physically leave the
    system. *)
let drop_file t ~file =
  Buffer_cache.drop_file t.cache file;
  if t.n_corrupt > 0 && Hashtbl.mem t.corrupt_files file then begin
    let dropped = Hashtbl.find t.corrupt_files file in
    Hashtbl.remove t.corrupt_files file;
    Hashtbl.iter
      (fun (f, p) () -> if f = file then Hashtbl.remove t.corrupt (f, p))
      (Hashtbl.copy t.corrupt);
    t.n_corrupt <- t.n_corrupt - dropped
  end

(** [reset_measurement t] clears statistics without touching the clock,
    cache, or any files; use between measured phases. *)
let reset_measurement t =
  Io_stats.reset t.stats;
  t.published <- Io_stats.create ()

(* ------------------------------------------------------------------ *)
(* Observability (lsm_obs) *)

let obs t = t.obs
let tracer t = t.obs.Lsm_obs.Obs.tracer
let metrics t = t.obs.Lsm_obs.Obs.metrics
let explain t = t.explain
let amp t = t.amp

(** [enable_explain t] installs (and returns) an active plan recorder
    stamped with this environment's simulated clock and fed by its
    {!Io_stats} counters.  Independent of {!enable_obs}: explain can run
    with tracing off and vice versa. *)
let enable_explain t =
  let e =
    Lsm_obs.Explain.create
      ~clock:(fun () -> t.now_us)
      ~counters:(fun () -> Io_stats.fields t.stats)
      ()
  in
  t.explain <- e;
  e

(** [explain_annotate t props] / [explain_count t key by] attach detail to
    the innermost in-flight plan node; one branch when explain is off. *)
let explain_annotate t props =
  if Lsm_obs.Explain.active t.explain then
    Lsm_obs.Explain.annotate t.explain props

let explain_count t key by =
  if Lsm_obs.Explain.active t.explain then
    Lsm_obs.Explain.count t.explain key by

(** [enable_obs t] installs (and returns) an enabled observability handle
    whose span tracer is stamped with this environment's simulated clock. *)
let enable_obs ?trace_capacity t =
  let o = Lsm_obs.Obs.create ?trace_capacity ~clock:(fun () -> t.now_us) () in
  t.obs <- o;
  o

(** [span t ?cat name f] runs [f] inside a tracer span carrying the
    {!Io_stats} deltas it caused as span arguments, and feeds the span's
    simulated duration into the [span.<name>] latency histogram.  When a
    plan recorder is active ({!enable_explain}) the same section also
    becomes a plan-tree node.  With both disabled this is two predicted
    branches around [f]. *)
let span t ?cat name f =
  let f =
    if Lsm_obs.Explain.active t.explain then fun () ->
      Lsm_obs.Explain.node t.explain name f
    else f
  in
  let run () =
    let o = t.obs in
    if not o.Lsm_obs.Obs.enabled then f ()
    else begin
      let before = Io_stats.copy t.stats in
      let t0 = t.now_us in
      let r =
        Lsm_obs.Tracer.with_span o.Lsm_obs.Obs.tracer ?cat
          ~args_of:(fun () -> Io_stats.fields (Io_stats.diff t.stats before))
          name f
      in
      let labels = match cat with Some c when c <> "" -> [ ("src", c) ] | _ -> [] in
      Lsm_obs.Metrics.observe
        (Lsm_obs.Metrics.histogram o.Lsm_obs.Obs.metrics ~labels ("span." ^ name))
        (t.now_us -. t0);
      r
    end
  in
  (* The telemetry tap is independent of the obs handle: a timeline can
     watch maintenance spans without paying for full tracing. *)
  match t.span_hook with
  | None -> run ()
  | Some hook ->
      let t0 = t.now_us in
      let r = run () in
      hook
        {
          sp_name = name;
          sp_cat = (match cat with Some c -> c | None -> "");
          sp_start_us = t0;
          sp_dur_us = t.now_us -. t0;
        };
      r

let set_span_hook t h = t.span_hook <- Some h
let clear_span_hook t = t.span_hook <- None

(** [emit_span t ?cat name ~start_us ~dur_us] reports a section that was
    not executed under a {!span} scope — the overlapping-maintenance
    scheduler interleaves several merge jobs on one clock, so a job's
    span is only known (start, busy-time) after the fact.  Feeds the
    same latency histogram and telemetry tap as {!span}. *)
let emit_span t ?cat name ~start_us ~dur_us =
  let o = t.obs in
  if o.Lsm_obs.Obs.enabled then begin
    let labels = match cat with Some c when c <> "" -> [ ("src", c) ] | _ -> [] in
    Lsm_obs.Metrics.observe
      (Lsm_obs.Metrics.histogram o.Lsm_obs.Obs.metrics ~labels ("span." ^ name))
      dur_us
  end;
  match t.span_hook with
  | None -> ()
  | Some hook ->
      hook
        {
          sp_name = name;
          sp_cat = (match cat with Some c -> c | None -> "");
          sp_start_us = start_us;
          sp_dur_us = dur_us;
        }

(** [publish_io_metrics t] bridges the {!Io_stats} counters accumulated
    since the last publish into the metrics registry ([io.*] counters, via
    {!Io_stats.diff}), and refreshes the cache-occupancy and clock
    gauges.  No-op when observability is disabled. *)
let publish_io_metrics t =
  let o = t.obs in
  if o.Lsm_obs.Obs.enabled then begin
    let m = o.Lsm_obs.Obs.metrics in
    List.iter
      (fun (k, v) -> Lsm_obs.Metrics.add (Lsm_obs.Metrics.counter m ("io." ^ k)) v)
      (Io_stats.fields (Io_stats.diff t.stats t.published));
    t.published <- Io_stats.copy t.stats;
    Lsm_obs.Metrics.set
      (Lsm_obs.Metrics.gauge m "cache.resident_pages")
      (Float.of_int (Buffer_cache.size t.cache));
    Lsm_obs.Metrics.set
      (Lsm_obs.Metrics.gauge m "cache.capacity_pages")
      (Float.of_int (Buffer_cache.capacity t.cache));
    Lsm_obs.Metrics.set (Lsm_obs.Metrics.gauge m "sim.now_us") t.now_us;
    if t.mem_probes <> [] then
      Lsm_obs.Metrics.set
        (Lsm_obs.Metrics.gauge m "mem.resident_bytes")
        (Float.of_int (mem_bytes t));
    (match t.mem_budget with
    | Some b ->
        Lsm_obs.Metrics.set
          (Lsm_obs.Metrics.gauge m "mem.budget_bytes")
          (Float.of_int b)
    | None -> ());
    let r = t.resil in
    List.iter
      (fun (k, v) ->
        Lsm_obs.Metrics.set
          (Lsm_obs.Metrics.gauge m ("resilience." ^ k))
          (Float.of_int v))
      [
        ("retries", r.retries);
        ("exhausted", r.exhausted);
        ("checksum_failures", r.checksum_failures);
        ("degraded_probes", r.degraded_probes);
        ("quarantines", r.quarantines);
        ("rebuilds", r.rebuilds);
        ("reschedules", r.reschedules);
        ("corrupt_pages", t.n_corrupt);
      ];
    let v = t.view in
    List.iter
      (fun (k, n) ->
        Lsm_obs.Metrics.set
          (Lsm_obs.Metrics.gauge m ("view." ^ k))
          (Float.of_int n))
      [
        ("builds", v.builds);
        ("build_rows", v.build_rows);
        ("build_pages", v.build_pages);
        ("scans", v.view_scans);
        ("segments", v.segments);
        ("rows_skipped", v.rows_skipped);
        ("rows_emitted", v.rows_emitted);
        ("invalidations", v.invalidations);
        ("fallbacks", v.fallbacks);
      ];
    Lsm_obs.Ampstats.publish t.amp m
  end
