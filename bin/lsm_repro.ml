(* Command-line driver for the reproduction experiments.

   lsm_repro list                 — show every experiment
   lsm_repro run fig14 [-s tiny]  — run one experiment
   lsm_repro all [-s medium]      — run the full suite
   lsm_repro inspect [-s small]   — amplification + component report
   lsm_repro serve [-s tiny]      — open-loop serving run / load sweep
   lsm_repro faultsim [--seed 1]  — fault-injection sweep + recovery check *)

open Cmdliner

let scale_arg =
  let doc = "Experiment scale: tiny, small, medium, or large." in
  Arg.(value & opt string "small" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Lsm_harness.Registry.id
          e.Lsm_harness.Registry.description)
      Lsm_harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all experiments") Term.(const run $ const ())

(* Observability flags (shared by `run` and `all`). *)
let trace_arg =
  let doc =
    "Record engine spans and write a Chrome trace_event JSON to $(docv) \
     (load in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc = "Print a per-environment text profile of the engine spans." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let metrics_arg =
  let doc = "Print each environment's metrics registry after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let explain_arg =
  let doc =
    "Record query plans (EXPLAIN ANALYZE): after the run, print one plan \
     tree per distinct operation with per-node timing, counters, and I/O \
     deltas."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let explain_json_arg =
  let doc = "Like $(b,--explain), but write the plans as JSON to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "explain-json" ] ~docv:"FILE" ~doc)

let check_writable = function
  | Some path -> (
      (* Fail on an unwritable path now, not after the experiment. *)
      try close_out (open_out path)
      with Sys_error msg ->
        Printf.eprintf "cannot write file: %s\n" msg;
        exit 1)
  | None -> ()

let setup_obs ~trace ~profile ~metrics ~explain ~explain_json =
  check_writable trace;
  check_writable explain_json;
  if trace <> None || profile || metrics then Lsm_harness.Obs_hub.enable ();
  if explain || explain_json <> None then Lsm_harness.Obs_hub.enable_explain ()

let finish_obs ~trace ~profile ~metrics ~explain ~explain_json =
  (match trace with
  | Some path ->
      let n = Lsm_harness.Obs_hub.write_chrome_trace path in
      Printf.printf "wrote %d spans to %s\n" n path
  | None -> ());
  if profile then print_string (Lsm_harness.Obs_hub.profile_text ());
  if explain then print_string (Lsm_harness.Obs_hub.explain_text ());
  (match explain_json with
  | Some path ->
      Lsm_obs.Json.write ~path (Lsm_harness.Obs_hub.explain_json ());
      Printf.printf "wrote explain plans to %s\n" path
  | None -> ());
  if metrics then
    List.iter print_endline (Lsm_harness.Obs_hub.metrics_lines ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run scale id trace profile metrics explain explain_json =
    let scale = Lsm_harness.Scale.of_string scale in
    match Lsm_harness.Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %s (try `lsm_repro list`)\n" id;
        exit 1
    | Some e ->
        setup_obs ~trace ~profile ~metrics ~explain ~explain_json;
        Printf.printf "running %s (%s) at scale %s...\n%!" e.Lsm_harness.Registry.id
          e.Lsm_harness.Registry.description scale.Lsm_harness.Scale.name;
        let reports = e.Lsm_harness.Registry.run scale in
        let reports =
          if metrics then
            List.map
              (fun r ->
                Lsm_harness.Report.with_appendix r
                  (Lsm_harness.Obs_hub.metrics_lines ()))
              reports
          else reports
        in
        List.iter Lsm_harness.Report.print reports;
        finish_obs ~trace ~profile ~metrics:false ~explain ~explain_json
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id (e.g. fig14)")
    Term.(
      const run $ scale_arg $ id_arg $ trace_arg $ profile_arg $ metrics_arg
      $ explain_arg $ explain_json_arg)

let csv_arg =
  let doc = "Also write one plot-ready CSV per table into $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let all_cmd =
  let run scale csv_dir trace profile metrics explain explain_json =
    let scale = Lsm_harness.Scale.of_string scale in
    setup_obs ~trace ~profile ~metrics ~explain ~explain_json;
    Lsm_harness.Registry.run_all ?csv_dir scale;
    finish_obs ~trace ~profile ~metrics ~explain ~explain_json
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run the full experiment suite")
    Term.(
      const run $ scale_arg $ csv_arg $ trace_arg $ profile_arg $ metrics_arg
      $ explain_arg $ explain_json_arg)

let inspect_cmd =
  let json_arg =
    let doc = "Also write the full inspection document as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let queries_arg =
    let doc = "Point-lookup sample size for the read-amplification probe." in
    Arg.(value & opt int 200 & info [ "queries" ] ~docv:"N" ~doc)
  in
  let run scale json queries =
    let scale = Lsm_harness.Scale.of_string scale in
    check_writable json;
    Printf.printf "inspecting at scale %s (%d records)...\n%!"
      scale.Lsm_harness.Scale.name scale.Lsm_harness.Scale.records;
    let r = Lsm_harness.Inspect.run ~queries scale in
    List.iter Lsm_harness.Report.print r.Lsm_harness.Inspect.reports;
    match json with
    | Some path ->
        Lsm_obs.Json.write ~path r.Lsm_harness.Inspect.json;
        Printf.printf "wrote inspection document to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Build the fig-12 insert workload and report write/read/space \
          amplification plus per-component state")
    Term.(const run $ scale_arg $ json_arg $ queries_arg)

let serve_cmd =
  let module Driver = Lsm_serve.Driver in
  let partitions_arg =
    let doc = "Number of hash partitions (simulated nodes)." in
    Arg.(value & opt int 4 & info [ "p"; "partitions" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Offered arrival rate in requests per simulated second; 0 (the \
       default) picks 70% of an estimated capacity."
    in
    Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let sweep_arg =
    let doc =
      "Load-sweep mode: run a rate ladder anchored to the capacity \
       estimate and report the saturation knee."
    in
    Arg.(value & flag & info [ "sweep" ] ~doc)
  in
  let duration_arg =
    let doc = "Simulated seconds of open-loop traffic (0 = scale default)." in
    Arg.(value & opt float 0.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let seed_arg =
    let doc = "Workload seed; results are deterministic given the seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let users_arg =
    let doc = "Zipf key-population size (0 = scale default)." in
    Arg.(value & opt int 0 & info [ "users" ] ~docv:"N" ~doc)
  in
  let arrivals_arg =
    let doc =
      "Arrival process: $(b,poisson), $(b,uniform), or $(b,bursty) \
       (on/off-modulated Poisson, same mean rate)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("poisson", `Poisson); ("uniform", `Uniform); ("bursty", `Bursty) ])
          `Poisson
      & info [ "arrivals" ] ~docv:"KIND" ~doc)
  in
  let chaos_arg =
    let doc =
      "Chaos fault plan: scheduled partition faults interpreted on the \
       arrival clock (e.g. $(b,crash\\@p2\\@t150ms); \
       $(b,io\\@p0\\@t50ms+40ms!6); $(b,slow\\@p3\\@t60ms+50ms*8); \
       $(b,corrupt\\@p1\\@t80ms)).  Repeatable; elements may also be \
       ';'-separated.  Runs against the durable (WAL-wrapped) cluster \
       with the degraded-correctness checker on."
    in
    Arg.(value & opt_all string [] & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request read deadline in simulated microseconds (chaos runs): \
       later answers are errors, hopeless queueing fails fast.  0 disables."
    in
    Arg.(value & opt float 0.0 & info [ "deadline-us" ] ~docv:"US" ~doc)
  in
  let shed_backlog_arg =
    let doc =
      "Admission-control backlog cap in simulated microseconds (chaos \
       runs): shed a request when every partition it needs has more \
       queued work than this.  0 disables."
    in
    Arg.(value & opt float 0.0 & info [ "shed-backlog" ] ~docv:"US" ~doc)
  in
  let retries_arg =
    let doc = "Front-door retry budget per partition piece (chaos runs)." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let hedge_arg =
    let doc =
      "Hedging threshold in simulated microseconds (chaos runs): a point \
       read slower than this gets one hedged re-attempt.  0 derives \
       deadline/2 when a deadline is set; negative disables."
    in
    Arg.(value & opt float 0.0 & info [ "hedge-us" ] ~docv:"US" ~doc)
  in
  let strategy_arg =
    let doc = "Delete-handling strategy: $(b,validation) or $(b,bitmap)." in
    Arg.(
      value
      & opt
          (enum
             [
               ("validation", Lsm_core.Strategy.validation);
               ("bitmap", Lsm_core.Strategy.mutable_bitmap);
             ])
          Lsm_core.Strategy.validation
      & info [ "strategy" ] ~docv:"KIND" ~doc)
  in
  let json_arg =
    let doc = "Write the serve document (lsm-repro-serve/1) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let timeline_arg =
    let doc =
      "Collect windowed telemetry during the run and write the timeline \
       document (lsm-repro-timeline/1) to $(docv): per-window latency \
       histograms per class, per-partition busy/backlog/memtable series, \
       and a flight-recorder ring of maintenance events, plus the SLO \
       evaluation.  Incompatible with $(b,--sweep)."
    in
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let timeline_csv_arg =
    let doc = "Also write the timeline's windows as a plot-ready CSV." in
    Arg.(
      value & opt (some string) None & info [ "timeline-csv" ] ~docv:"FILE" ~doc)
  in
  let slo_arg =
    let doc =
      "SLO objective evaluated against the timeline, as SERIES:pQ<DUR \
       (e.g. $(b,point:p99<1500us), $(b,all:p95<2ms)).  Repeatable.  The \
       default, when a timeline is collected, is $(b,point:p99<1500us)."
    in
    Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"SPEC" ~doc)
  in
  let window_ms_arg =
    let doc = "Timeline window width, in simulated milliseconds." in
    Arg.(value & opt float 100.0 & info [ "window-ms" ] ~docv:"MS" ~doc)
  in
  let maint_workers_arg =
    let doc =
      "Modeled maintenance workers per partition; with more than one, \
       independent merges overlap deterministically."
    in
    Arg.(value & opt int 1 & info [ "maint-workers" ] ~docv:"N" ~doc)
  in
  let mem_shards_arg =
    let doc =
      "Memory shards per tree: the budget evicts one full shard at a \
       time, so sibling shards keep absorbing writes during a flush."
    in
    Arg.(value & opt int 1 & info [ "mem-shards" ] ~docv:"N" ~doc)
  in
  let run scale partitions rate sweep duration seed users arrivals chaos
      deadline_us shed_backlog_us retries hedge_us strategy json timeline
      timeline_csv slos window_ms maint_workers mem_shards metrics =
    let scale = Lsm_harness.Scale.of_string scale in
    check_writable json;
    check_writable timeline;
    check_writable timeline_csv;
    if maint_workers < 1 then begin
      Printf.eprintf "--maint-workers must be >= 1\n";
      exit 2
    end;
    if mem_shards < 1 then begin
      Printf.eprintf "--mem-shards must be >= 1\n";
      exit 2
    end;
    if sweep && timeline <> None then begin
      Printf.eprintf "--timeline records a single run; drop --sweep\n";
      exit 2
    end;
    if window_ms <= 0.0 then begin
      Printf.eprintf "--window-ms must be positive\n";
      exit 2
    end;
    let faults =
      match chaos with
      | [] -> []
      | specs -> (
          match Lsm_serve.Chaos.parse (String.concat ";" specs) with
          | Ok fs -> fs
          | Error msg ->
              Printf.eprintf "%s\n%s\n" msg Lsm_serve.Chaos.usage;
              exit 2)
    in
    List.iter
      (fun f ->
        if f.Lsm_serve.Chaos.part >= partitions then begin
          Printf.eprintf "chaos fault targets p%d but there are %d partitions\n"
            f.Lsm_serve.Chaos.part partitions;
          exit 2
        end)
      faults;
    if faults <> [] && sweep then begin
      Printf.eprintf "--chaos runs a single faulted run; drop --sweep\n";
      exit 2
    end;
    if retries < 0 then begin
      Printf.eprintf "--retries must be >= 0\n";
      exit 2
    end;
    let objectives =
      let specs = if slos = [] then [ "point:p99<1500us" ] else slos in
      List.map
        (fun s ->
          match Lsm_obs.Slo.objective_of_string s with
          | Ok o -> o
          | Error msg ->
              Printf.eprintf "%s\n" msg;
              exit 2)
        specs
    in
    if metrics then Lsm_harness.Obs_hub.enable ();
    let cfg = Driver.config ~partitions scale in
    let cfg =
      {
        cfg with
        Driver.rate_rps = rate;
        duration_s = (if duration > 0.0 then duration else cfg.Driver.duration_s);
        users = (if users > 0 then users else cfg.Driver.users);
        arrivals;
        maint_workers;
        mem_shards;
        seed;
        strategy;
        chaos = faults;
        mix = (if faults = [] then cfg.Driver.mix else Driver.chaos_mix);
        policy =
          {
            Lsm_serve.Chaos.deadline_us;
            retries;
            hedge_us;
            shed_backlog_us;
          };
      }
    in
    Printf.printf
      "serving at scale %s: %d partitions, budget %d bytes, %d users, seed %d...\n%!"
      scale.Lsm_harness.Scale.name partitions cfg.Driver.budget_bytes
      cfg.Driver.users seed;
    let reg = Lsm_obs.Metrics.create () in
    let checker_failed = ref false in
    let doc =
      if sweep then begin
        let sw = Driver.sweep cfg in
        Lsm_harness.Report.print (Lsm_serve.Serve_report.sweep_report sw);
        List.iter
          (fun r -> Lsm_harness.Report.print (Lsm_serve.Serve_report.report r))
          sw.Driver.points;
        (match sw.Driver.points with
        | [] -> ()
        | p -> Lsm_serve.Serve_report.publish (List.nth p (List.length p - 1)) reg);
        Lsm_serve.Serve_report.sweep_to_json cfg sw
      end
      else if faults <> [] then begin
        let ts =
          match timeline with
          | None -> None
          | Some _ ->
              Some
                (Lsm_obs.Timeseries.create ~window_us:(window_ms *. 1000.0) ())
        in
        let checker = Lsm_serve.Chaos_checker.create ~partitions () in
        let verdict = ref None in
        let c =
          Driver.run_chaos ?timeline:ts
            ~on_preload:(Lsm_serve.Chaos_checker.preload checker)
            ~observe:(Lsm_serve.Chaos_checker.observe checker)
            ~probe:(fun lookup ->
              verdict :=
                Some (Lsm_serve.Chaos_checker.verify checker ~probe:lookup))
            cfg
        in
        Lsm_harness.Report.print
          (Lsm_serve.Serve_report.chaos_report ?checker:!verdict c);
        (match ts with
        | Some ts ->
            Lsm_harness.Report.print
              (Lsm_serve.Serve_report.timeline_report c.Driver.c_base ts
                 objectives);
            (match timeline with
            | Some path ->
                Lsm_obs.Json.write ~path
                  (Lsm_serve.Serve_report.timeline_to_json c.Driver.c_base ts
                     objectives);
                Printf.printf "wrote timeline document to %s\n" path
            | None -> ());
            (match timeline_csv with
            | Some path ->
                let oc = open_out path in
                output_string oc (Lsm_obs.Timeseries.to_csv ts);
                close_out oc;
                Printf.printf "wrote timeline CSV to %s\n" path
            | None -> ())
        | None -> ());
        Lsm_serve.Serve_report.publish c.Driver.c_base reg;
        (match !verdict with
        | Some v when not (Lsm_serve.Chaos_checker.ok v) ->
            checker_failed := true
        | _ -> ());
        Lsm_serve.Serve_report.chaos_to_json ?checker:!verdict c
      end
      else begin
        let ts =
          match timeline with
          | None -> None
          | Some _ ->
              Some
                (Lsm_obs.Timeseries.create ~window_us:(window_ms *. 1000.0) ())
        in
        let r = Driver.run ?timeline:ts cfg in
        Lsm_harness.Report.print (Lsm_serve.Serve_report.report r);
        (match ts with
        | Some ts ->
            Lsm_harness.Report.print
              (Lsm_serve.Serve_report.timeline_report r ts objectives);
            (match timeline with
            | Some path ->
                Lsm_obs.Json.write ~path
                  (Lsm_serve.Serve_report.timeline_to_json r ts objectives);
                Printf.printf "wrote timeline document to %s\n" path
            | None -> ());
            (match timeline_csv with
            | Some path ->
                let oc = open_out path in
                output_string oc (Lsm_obs.Timeseries.to_csv ts);
                close_out oc;
                Printf.printf "wrote timeline CSV to %s\n" path
            | None -> ())
        | None -> ());
        Lsm_serve.Serve_report.publish r reg;
        Lsm_serve.Serve_report.to_json r
      end
    in
    (match json with
    | Some path ->
        Lsm_obs.Json.write ~path doc;
        Printf.printf "wrote serve document to %s\n" path
    | None -> ());
    if metrics then begin
      print_endline "metrics: serve";
      List.iter
        (fun l -> print_endline ("  " ^ l))
        (Lsm_obs.Metrics.to_lines reg);
      List.iter print_endline (Lsm_harness.Obs_hub.metrics_lines ())
    end;
    if !checker_failed then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop serving layer: arrival-driven mixed traffic against N \
          partitions under one global memory budget, with per-class \
          p50/p95/p99, a load-sweep mode that finds the saturation knee, \
          and a chaos mode that injects partition faults under load and \
          audits graceful degradation")
    Term.(
      const run $ scale_arg $ partitions_arg $ rate_arg $ sweep_arg
      $ duration_arg $ seed_arg $ users_arg $ arrivals_arg $ chaos_arg
      $ deadline_arg $ shed_backlog_arg $ retries_arg $ hedge_arg
      $ strategy_arg $ json_arg $ timeline_arg $ timeline_csv_arg $ slo_arg
      $ window_ms_arg $ maint_workers_arg $ mem_shards_arg $ metrics_arg)

let faultsim_cmd =
  let module F = Lsm_faultsim.Fault in
  let module Sc = Lsm_faultsim.Scenario in
  let module H = Lsm_faultsim.Harness in
  let module C = Lsm_faultsim.Checker in
  let seed_arg =
    let doc = "Workload seed; a failure reproduces from this alone." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let txns_arg =
    let doc = "Transactions per scenario run." in
    Arg.(value & opt int Sc.default_config.Sc.txns & info [ "txns" ] ~docv:"N" ~doc)
  in
  let points_arg =
    let doc = "Crash-plan budget: distinct (point, hit) crashes to inject." in
    Arg.(value & opt int 500 & info [ "points" ] ~docv:"N" ~doc)
  in
  let io_arg =
    let doc = "Transient I/O-error plan budget (page-I/O points only)." in
    Arg.(value & opt int 24 & info [ "io" ] ~docv:"N" ~doc)
  in
  let corrupt_arg =
    let doc = "Page-corruption plan budget (page-I/O points only)." in
    Arg.(value & opt int 12 & info [ "corrupt" ] ~docv:"N" ~doc)
  in
  let intermittent_arg =
    let doc =
      "Intermittent I/O plan budget: half fail 2 consecutive announcements \
       (absorbed by the engine's retry budget), half fail 6 (exhausting it)."
    in
    Arg.(value & opt int 8 & info [ "intermittent" ] ~docv:"N" ~doc)
  in
  let list_points_arg =
    let doc =
      "Run the fault-free counting run and list every announced fault \
       point with its occurrence count (valid --point values), then exit."
    in
    Arg.(value & flag & info [ "list-points" ] ~doc)
  in
  let validation_arg =
    let doc = "Run the Validation strategy instead of Mutable-bitmap." in
    Arg.(value & flag & info [ "validation" ] ~doc)
  in
  let group_commit_arg =
    let doc =
      "WAL group-commit batch size: commits enqueue into a group and one \
       fsync covers the whole group. 1 (default) = serial, one fsync per \
       commit."
    in
    Arg.(value & opt int 1 & info [ "group-commit" ] ~docv:"N" ~doc)
  in
  let maint_workers_arg =
    let doc =
      "Modeled maintenance workers: with more than one, independent merges \
       overlap deterministically."
    in
    Arg.(value & opt int 1 & info [ "maint-workers" ] ~docv:"N" ~doc)
  in
  let mem_shards_arg =
    let doc =
      "Memory shards per tree: the drive phase rotates per-shard flushes, \
       exercising the per-shard flush crash points."
    in
    Arg.(value & opt int 1 & info [ "mem-shards" ] ~docv:"N" ~doc)
  in
  let point_arg =
    let doc = "Reproduce a single plan: fault point name (with --hit)." in
    Arg.(value & opt (some string) None & info [ "point" ] ~docv:"POINT" ~doc)
  in
  let hit_arg =
    let doc = "Which occurrence of --point fails (1-based)." in
    Arg.(value & opt int 1 & info [ "hit" ] ~docv:"K" ~doc)
  in
  let kind_arg =
    let doc =
      "Fault kind for --point: $(b,crash), $(b,io) (alias $(b,io-error)), \
       or $(b,corrupt)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("crash", F.Crash);
               ("io", F.Io_error);
               ("io-error", F.Io_error);
               ("corrupt", F.Corrupt);
             ])
          F.Crash
      & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let fails_arg =
    let doc =
      "Consecutive announcements of --point to fail (intermittent fault)."
    in
    Arg.(value & opt int 1 & info [ "fails" ] ~docv:"K" ~doc)
  in
  let run seed txns points io corrupt intermittent validation group_commit
      maint_workers mem_shards list_points point hit kind fails =
    if group_commit < 1 then begin
      Printf.eprintf "--group-commit must be >= 1\n";
      exit 2
    end;
    if maint_workers < 1 then begin
      Printf.eprintf "--maint-workers must be >= 1\n";
      exit 2
    end;
    if mem_shards < 1 then begin
      Printf.eprintf "--mem-shards must be >= 1\n";
      exit 2
    end;
    let cfg =
      {
        Sc.default_config with
        Sc.seed;
        txns;
        validation;
        group_commit;
        maint_workers;
        mem_shards;
      }
    in
    if list_points then begin
      let inj, _ = Sc.run cfg in
      Printf.printf "fault points announced (drive phase, seed %d):\n" seed;
      List.iter
        (fun (p, c) -> Printf.printf "  %-22s %6d\n" p c)
        (F.hits inj);
      print_newline ();
      print_string
        "serve-layer chaos faults (lsm_repro serve --chaos, per partition):\n\
        \  crash                  crash + durable-frontier recovery under load\n\
        \  io                     intermittent I/O-error window on io.* points\n\
        \  slow                   device I/O time multiplier window\n\
        \  corrupt                one-shot page corruption, quarantine + heal\n";
      print_string Lsm_serve.Chaos.usage
    end
    else
    match point with
    | Some p ->
        (* Single-plan reproduction: run it, print the checker verdict. *)
        let plan = { F.kind; point = p; hit; fails } in
        let inj, st = Sc.run ~plan cfg in
        if not (F.fired inj) then begin
          Printf.printf "plan did not fire: %s\n" (F.describe plan);
          exit 1
        end;
        let msgs = C.check st in
        let msgs =
          if msgs = [] then (Sc.smoke st; C.check st) else msgs
        in
        if msgs = [] then
          Printf.printf "recovered and checker-accepted: %s\n" (F.describe plan)
        else begin
          Printf.printf "FAILED: %s\n" (F.describe plan);
          List.iter (fun m -> Printf.printf "  %s\n" m) msgs;
          exit 1
        end
    | None -> (
        match
          H.run ~crash_budget:points ~io_budget:io ~corrupt_budget:corrupt
            ~intermittent_budget:intermittent cfg
        with
        | r ->
            H.print_report Format.std_formatter r;
            if not (H.ok r) then exit 1
        | exception H.Baseline_failure msgs ->
            Printf.printf "BASELINE FAILURE (no fault injected):\n";
            List.iter (fun m -> Printf.printf "  %s\n" m) msgs;
            exit 1)
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Enumerate crash, I/O-error, corruption, and intermittent fault \
          injection points over a seeded transactional workload, fail at \
          each, and verify recovery (and healing) against a \
          committed-state model")
    Term.(
      const run $ seed_arg $ txns_arg $ points_arg $ io_arg $ corrupt_arg
      $ intermittent_arg $ validation_arg $ group_commit_arg
      $ maint_workers_arg $ mem_shards_arg $ list_points_arg $ point_arg
      $ hit_arg $ kind_arg $ fails_arg)

let () =
  let doc =
    "Reproduction of 'Efficient Data Ingestion and Query Processing for \
     LSM-Based Storage Systems' (Luo & Carey, VLDB 2019)"
  in
  let code =
    Cmd.eval
      (Cmd.group
         (Cmd.info "lsm_repro" ~version:"1.0.0" ~doc)
         [ list_cmd; run_cmd; all_cmd; inspect_cmd; serve_cmd; faultsim_cmd ])
  in
  (* Cmdliner reports CLI misuse (unknown subcommand or flag) with its
     own exit code; map it to the conventional 2. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
